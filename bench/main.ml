(* Benchmark and reproduction harness.

   One subcommand per table/figure of the paper (see DESIGN.md section 4):

     table1 table2 table3   the worked Superpages example
     table4                 the 12-site evaluation, both methods
     clean17                Section 6.3 metrics excluding CSP failures
     figure1                sample list/detail page HTML
     figure23               learned parameters of the probabilistic model
     ablation               base vs period probabilistic model (Fig 2 vs 3)
     ablation-csp           relaxation objective / monotonicity ablations
     vision                 Section 3 end-to-end: crawl, classify, segment
     sweep                  detail-coverage and input-size sweeps
     wrapper                wrapper bootstrap from one segmented page
     baseline               tag heuristic + RoadRunner-lite comparison
     timing                 Bechamel microbenchmarks ("a few seconds" claim)

   With no arguments everything runs in order. *)

open Tabseg_sitegen
open Tabseg_eval

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Shared evaluation driver                                            *)
(* ------------------------------------------------------------------ *)

type page_result = {
  site_name : string;
  page_index : int;
  counts : Metrics.counts;
  notes : Tabseg.Segmentation.note list;
  seconds : float;
}

let segment_page ~method_ ?prob_config generated ~page_index =
  let list_pages, detail_pages =
    Sites.segmentation_input generated ~page_index
  in
  let input = { Tabseg.Pipeline.list_pages; detail_pages } in
  Tabseg.Api.segment ~method_ ?prob_config input

let evaluate_page ~method_ ?prob_config generated ~page_index =
  let page = List.nth generated.Sites.pages page_index in
  let started = Unix.gettimeofday () in
  let result = segment_page ~method_ ?prob_config generated ~page_index in
  let seconds = Unix.gettimeofday () -. started in
  let counts =
    Scorer.score ~truth:page.Sites.truth result.Tabseg.Api.segmentation
  in
  {
    site_name = generated.Sites.site.Sites.name;
    page_index;
    counts;
    notes = result.Tabseg.Api.segmentation.Tabseg.Segmentation.notes;
    seconds;
  }

let evaluate_all ~method_ ?prob_config () =
  List.concat_map
    (fun site ->
      let generated = Sites.generate site in
      List.mapi
        (fun page_index _ ->
          evaluate_page ~method_ ?prob_config generated ~page_index)
        generated.Sites.pages)
    Sites.all

let note_string notes =
  String.concat ", "
    (List.map
       (fun n -> String.make 1 (Tabseg.Segmentation.note_letter n))
       (List.sort_uniq compare notes))

(* ------------------------------------------------------------------ *)
(* Tables 1-3: the worked example                                      *)
(* ------------------------------------------------------------------ *)

let superpages_prepared () =
  let generated = Sites.generate (Sites.find "SuperPages") in
  let list_pages, detail_pages =
    Sites.segmentation_input generated ~page_index:0
  in
  Tabseg.Pipeline.prepare { Tabseg.Pipeline.list_pages; detail_pages }

let table1 () =
  section "Table 1: observations of extracts on detail pages (SuperPages)";
  let prepared = superpages_prepared () in
  Format.printf "%a@."
    Tabseg_extract.Observation.pp
    prepared.Tabseg.Pipeline.observation

let table2 () =
  section "Table 2: assignment of extracts to records (CSP, SuperPages)";
  let prepared = superpages_prepared () in
  let segmentation = Tabseg.Csp_segmenter.segment prepared in
  Format.printf "%a@." Tabseg.Segmentation.pp_assignment_table segmentation;
  Format.printf "@.%a@." Tabseg.Segmentation.pp segmentation

let table3 () =
  section "Table 3: positions of extracts on detail pages (SuperPages)";
  let prepared = superpages_prepared () in
  Format.printf "%a@."
    Tabseg_extract.Observation.pp_positions
    prepared.Tabseg.Pipeline.observation

(* ------------------------------------------------------------------ *)
(* Table 4: the 12-site evaluation                                     *)
(* ------------------------------------------------------------------ *)

let print_table4_rows prob csp =
  Printf.printf "%-22s %4s | %-18s %-8s | %-18s %-8s\n" "Site" "page"
    "Probabilistic" "notes" "CSP" "notes";
  Printf.printf "%-22s %4s | %-18s %-8s | %-18s %-8s\n" "" ""
    "Cor/InC/FN/FP" "" "Cor/InC/FN/FP" "";
  List.iter2
    (fun (p : page_result) (c : page_result) ->
      assert (p.site_name = c.site_name && p.page_index = c.page_index);
      let cell counts = Format.asprintf "%a" Metrics.pp counts in
      Printf.printf "%-22s %4d | %-18s %-8s | %-18s %-8s\n" p.site_name
        (p.page_index + 1) (cell p.counts) (note_string p.notes)
        (cell c.counts) (note_string c.notes))
    prob csp

let print_totals label results =
  let totals = Metrics.total (List.map (fun r -> r.counts) results) in
  Printf.printf "%-14s %s  (%s)\n" label
    (Format.asprintf "%a" Metrics.pp_prf totals)
    (Format.asprintf "Cor/InC/FN/FP = %a" Metrics.pp totals)

let table4 () =
  section "Table 4: automatic record segmentation of 12 sites";
  let prob = evaluate_all ~method_:Tabseg.Api.Probabilistic () in
  let csp = evaluate_all ~method_:Tabseg.Api.Csp () in
  print_table4_rows prob csp;
  Printf.printf "\n";
  print_totals "Probabilistic" prob;
  print_totals "CSP" csp;
  Printf.printf
    "\nPaper:         Probabilistic P=0.74 R=0.99 F=0.85 | CSP P=0.85 \
     R=0.84 F=0.84\n";
  (prob, csp)

let clean17 ?precomputed () =
  section
    "Section 6.3: metrics on the pages where the CSP found a solution";
  let prob, csp =
    match precomputed with
    | Some results -> results
    | None ->
      ( evaluate_all ~method_:Tabseg.Api.Probabilistic (),
        evaluate_all ~method_:Tabseg.Api.Csp () )
  in
  let failed (r : page_result) =
    List.mem Tabseg.Segmentation.No_solution r.notes
  in
  let kept_keys =
    List.filter_map
      (fun (r : page_result) ->
        if failed r then None else Some (r.site_name, r.page_index))
      csp
  in
  let keep (r : page_result) =
    List.mem (r.site_name, r.page_index) kept_keys
  in
  Printf.printf "Pages kept: %d of %d\n" (List.length kept_keys)
    (List.length csp);
  print_totals "CSP" (List.filter keep csp);
  print_totals "Probabilistic" (List.filter keep prob);
  Printf.printf
    "\nPaper (17 clean pages): CSP P=0.99 R=0.92 F=0.95 | Probabilistic \
     P=0.78 R=1.00 F=0.88\n"

(* ------------------------------------------------------------------ *)
(* Figure 1: example pages                                             *)
(* ------------------------------------------------------------------ *)

let figure1 () =
  section "Figure 1: example list and detail pages (SuperPages)";
  let generated = Sites.generate (Sites.find "SuperPages") in
  let page = List.hd generated.Sites.pages in
  Printf.printf "--- list page ---\n%s\n" page.Sites.list_html;
  Printf.printf "--- first detail page ---\n%s\n"
    (List.hd page.Sites.detail_htmls)

(* ------------------------------------------------------------------ *)
(* Figures 2-3: the learned model parameters                           *)
(* ------------------------------------------------------------------ *)

let figure23 () =
  section
    "Figures 2-3: learned parameters of the probabilistic model \
     (OhioCorrections page 1)";
  let generated = Sites.generate (Sites.find "OhioCorrections") in
  let list_pages, detail_pages =
    Sites.segmentation_input generated ~page_index:0
  in
  let input = { Tabseg.Pipeline.list_pages; detail_pages } in
  let type_names =
    [| "html"; "punct"; "alnum"; "numeric"; "alpha"; "cap"; "lower";
       "CAPS" |]
  in
  let show label config =
    let result =
      Tabseg.Api.segment ~method_:Tabseg.Api.Probabilistic
        ~prob_config:config input
    in
    match result.Tabseg.Api.diagnostics with
    | None -> ()
    | Some d ->
      Printf.printf "\n--- %s (EM %d iterations, logL %.1f) ---\n" label
        d.Tabseg.Prob_segmenter.iterations
        d.Tabseg.Prob_segmenter.log_likelihood;
      (match d.Tabseg.Prob_segmenter.period_distribution with
      | Some pi ->
        Printf.printf "P(pi): %s\n"
          (String.concat " "
             (Array.to_list
                (Array.mapi
                   (fun l p ->
                     if p > 0.02 then Printf.sprintf "len%d:%.2f" (l + 1) p
                     else "")
                   pi)
              |> List.filter (fun s -> s <> "")))
      | None -> ());
      List.iter
        (fun (c, profile) ->
          let dominant =
            Array.to_list (Array.mapi (fun bit p -> (p, bit)) profile)
            |> List.sort compare |> List.rev
            |> List.filteri (fun i (p, _) -> i < 3 && p > 0.3)
            |> List.map (fun (p, bit) ->
                   Printf.sprintf "%s:%.2f" type_names.(bit) p)
          in
          Printf.printf "P(T|C=L%d): %s\n" (c + 1)
            (String.concat " " dominant))
        d.Tabseg.Prob_segmenter.emission_profiles
  in
  show "Base model (Figure 2)" Tabseg.Prob_segmenter.base_config;
  show "Period model (Figure 3)" Tabseg.Prob_segmenter.default_config

(* ------------------------------------------------------------------ *)
(* Ablation: base vs period model (Figure 2 vs Figure 3)               *)
(* ------------------------------------------------------------------ *)

let ablation () =
  section "Ablation: probabilistic model without/with the period model";
  let base =
    evaluate_all ~method_:Tabseg.Api.Probabilistic
      ~prob_config:Tabseg.Prob_segmenter.base_config ()
  in
  let period =
    evaluate_all ~method_:Tabseg.Api.Probabilistic
      ~prob_config:Tabseg.Prob_segmenter.default_config ()
  in
  Printf.printf "On the twelve synthetic sites:\n";
  print_totals "Base (Fig 2)" base;
  print_totals "Period (Fig 3)" period;
  (* Decode strategy: the paper's MAP (Viterbi) vs per-extract posterior
     argmax. *)
  let posterior =
    evaluate_all ~method_:Tabseg.Api.Probabilistic
      ~prob_config:
        { Tabseg.Prob_segmenter.default_config with
          Tabseg.Prob_segmenter.decoder =
            Tabseg.Prob_segmenter.Posterior_decoding }
      ()
  in
  Printf.printf "\nDecode strategy (period model):\n";
  print_totals "MAP (paper)" period;
  print_totals "Posterior" posterior;
  (* The detail-page constraints dominate on full sites, so the variants
     nearly tie there. The period structure earns its keep when the
     bootstrap is ambiguous: stress observation tables where extracts match
     several neighboring detail pages and record lengths are bimodal. *)
  Printf.printf
    "\nStress: random observation tables, K=12 records, record length 3 \
     or 5,\nper-extract record accuracy (mean over 8 tables):\n";
  Printf.printf "%-26s %-10s %-10s %-10s\n" "" "amb=0.0" "amb=0.5" "amb=0.9";
  let column_masks_typed =
    (* five distinguishable column type signatures *)
    [| 0b00110100 (* capitalized alpha *); 0b00001100 (* numeric *);
       0b10010100 (* allcaps *); 0b00001100 (* numeric *);
       0b01010100 (* lowercased *) |]
  in
  let column_masks_flat = Array.make 5 0b00110100 in
  let run_regime label masks =
    let accuracies =
      List.map
        (fun ambiguity ->
          let rand = Random.State.make [| 97; int_of_float (ambiguity *. 100.) |] in
          let trial variant =
            (* Build a random observation table. *)
            let num_records = 12 in
            let lengths =
              Array.init num_records (fun _ ->
                  if Random.State.bool rand then 3 else 5)
            in
            let entries = ref [] in
            let truth = ref [] in
            let id = ref 0 in
            Array.iteri
              (fun j length ->
                for position = 0 to length - 1 do
                  let column = if length = 3 then position + 1 else position in
                  let candidates =
                    List.sort_uniq compare
                      (j
                      :: List.filter_map
                           (fun neighbor ->
                             if
                               neighbor >= 0 && neighbor < num_records
                               && Random.State.float rand 1.0 < ambiguity
                             then Some neighbor
                             else None)
                           [ j - 1; j + 1 ])
                  in
                  let extract =
                    {
                      Tabseg_extract.Extract.id = !id;
                      words = [ Printf.sprintf "w%d" !id ];
                      text = Printf.sprintf "w%d" !id;
                      start_index = 10 * !id;
                      stop_index = (10 * !id) + 1;
                      types = masks.(column);
                      first_types = masks.(column);
                    }
                  in
                  entries :=
                    { Tabseg_extract.Observation.extract;
                      pages = candidates; positions = [] }
                    :: !entries;
                  truth := j :: !truth;
                  incr id
                done)
              lengths;
            let observation =
              {
                Tabseg_extract.Observation.entries =
                  Array.of_list (List.rev !entries);
                extras = [];
                num_details = num_records;
              }
            in
            let truth = Array.of_list (List.rev !truth) in
            let config =
              let quick base =
                { base with
                  Tabseg.Prob_segmenter.em_iterations = 4; max_columns = 8 }
              in
              match variant with
              | `Base -> quick Tabseg.Prob_segmenter.base_config
              | `Period -> quick Tabseg.Prob_segmenter.default_config
            in
            let segmentation, _ =
              Tabseg.Prob_segmenter.solve_observation ~config observation
            in
            let correct = ref 0 in
            List.iter
              (fun (record : Tabseg.Segmentation.record) ->
                List.iter
                  (fun (e : Tabseg_extract.Extract.t) ->
                    if
                      e.Tabseg_extract.Extract.id < Array.length truth
                      && truth.(e.Tabseg_extract.Extract.id)
                         = record.Tabseg.Segmentation.number
                    then incr correct)
                  record.Tabseg.Segmentation.extracts)
              segmentation.Tabseg.Segmentation.records;
            float_of_int !correct /. float_of_int (Array.length truth)
          in
          let mean variant =
            let trials = List.init 8 (fun _ -> trial variant) in
            List.fold_left ( +. ) 0. trials /. 8.
          in
          (mean `Base, mean `Period))
        [ 0.0; 0.5; 0.9 ]
    in
    let row name select =
      Printf.printf "%-26s %s\n" name
        (String.concat ""
           (List.map
              (fun pair -> Printf.sprintf "%-10.3f" (select pair))
              accuracies))
    in
    row (label ^ ", base (Fig 2)") fst;
    row (label ^ ", period (Fig 3)") snd
  in
  run_regime "typed columns" column_masks_typed;
  run_regime "flat columns" column_masks_flat;
  Printf.printf
    "\nPaper: \"this more complex model does in fact give us improvements \
     in accuracy\" (Section 5.2.2)\n"

(* ------------------------------------------------------------------ *)
(* Ablation: CSP design choices                                        *)
(* ------------------------------------------------------------------ *)

let evaluate_all_csp config =
  List.concat_map
    (fun site ->
      let generated = Sites.generate site in
      List.mapi
        (fun page_index page ->
          let list_pages, detail_pages =
            Sites.segmentation_input generated ~page_index
          in
          let input = { Tabseg.Pipeline.list_pages; detail_pages } in
          let prepared = Tabseg.Pipeline.prepare input in
          let segmentation = Tabseg.Csp_segmenter.segment ~config prepared in
          let counts = Scorer.score ~truth:page.Sites.truth segmentation in
          {
            site_name = site.Sites.name;
            page_index;
            counts;
            notes = segmentation.Tabseg.Segmentation.notes;
            seconds = 0.;
          })
        generated.Sites.pages)
    Sites.all

let ablation_csp () =
  section "Ablation: CSP design choices";
  let default = Tabseg.Csp_segmenter.default_config in
  Printf.printf "Relaxation objective after a strict failure:\n";
  print_totals "Paper (satisfy)" (evaluate_all_csp default);
  print_totals "Coverage (soft)"
    (evaluate_all_csp Tabseg.Csp_segmenter.coverage_config);
  Printf.printf
    "\nMonotonicity constraints (implicit in the paper's horizontal-layout \
     assumption):\n";
  print_totals "with" (evaluate_all_csp default);
  print_totals "without"
    (evaluate_all_csp { default with Tabseg.Csp_segmenter.monotone = false })

(* ------------------------------------------------------------------ *)
(* Baselines (Section 6.3 discussion)                                  *)
(* ------------------------------------------------------------------ *)

let baseline () =
  section "Baselines: HTML-tag heuristic and RoadRunner-lite";
  Printf.printf "%-22s %-32s %s\n" "Site" "Tag heuristic (Cor/InC/FN/FP)"
    "RoadRunner-lite";
  List.iter
    (fun site ->
      let generated = Sites.generate site in
      let page = List.hd generated.Sites.pages in
      let tag_counts =
        Scorer.score ~truth:page.Sites.truth
          (Tabseg_baseline.Tag_heuristic.segment page.Sites.list_html)
      in
      let roadrunner =
        match Tabseg_baseline.Roadrunner_lite.induce page.Sites.list_html with
        | Tabseg_baseline.Roadrunner_lite.Wrapper { rows_matched; _ } ->
          Printf.sprintf "wrapper induced (%d rows)" rows_matched
        | Tabseg_baseline.Roadrunner_lite.Failure reason ->
          "FAILED: " ^ reason
      in
      Printf.printf "%-22s %-32s %s\n" site.Sites.name
        (Format.asprintf "%a  %a" Metrics.pp tag_counts Metrics.pp_prf
           tag_counts)
        roadrunner)
    Sites.all;
  Printf.printf
    "\nPaper claim: union-free grammars fail on alternative formatting \
     (SuperPages); the content-based methods handle it.\n"

(* ------------------------------------------------------------------ *)
(* The Section 3 vision: crawl, classify, segment (extension)          *)
(* ------------------------------------------------------------------ *)

let vision () =
  section
    "Section 3 vision: entry page -> crawl -> classify -> segment (auto)";
  Printf.printf "%-22s %8s %6s %8s %6s | %-24s\n" "Site" "fetched" "lists"
    "details" "other" "auto segmentation (P/R/F per list page)";
  List.iter
    (fun site ->
      let generated = Sites.generate site in
      let graph = Tabseg_navigator.Simulate.graph_of_site generated in
      let report = Tabseg_navigator.Auto.run graph in
      let scores =
        List.filter_map
          (fun result ->
            match
              Tabseg_navigator.Simulate.truth_for generated
                result.Tabseg_navigator.Auto.list_url
            with
            | None -> None
            | Some truth ->
              Some
                (Format.asprintf "%a" Metrics.pp_prf
                   (Scorer.score ~truth
                      result.Tabseg_navigator.Auto.segmentation)))
          report.Tabseg_navigator.Auto.results
      in
      Printf.printf "%-22s %8d %6d %8d %6d | %s\n" site.Sites.name
        report.Tabseg_navigator.Auto.pages_fetched
        report.Tabseg_navigator.Auto.lists_found
        report.Tabseg_navigator.Auto.details_found
        report.Tabseg_navigator.Auto.others_found
        (String.concat "  " scores))
    Sites.all;
  Printf.printf
    "\nPaper (Section 3): \"the user provides a pointer to the top-level \
     page and the system automatically navigates the site ... We are \
     already close to this vision.\"\n"

(* ------------------------------------------------------------------ *)
(* Sweeps (extension): detail coverage and input-size scaling          *)
(* ------------------------------------------------------------------ *)

let sweep () =
  section "Sweep: accuracy vs detail-page coverage (extension)";
  (* The paper assumes every detail page was downloaded. What if only a
     fraction was? Blank the missing ones (evenly spread) and measure. *)
  let generated = Sites.generate (Sites.find "AlleghenyCounty") in
  let page = List.hd generated.Sites.pages in
  let list_pages, detail_pages =
    Sites.segmentation_input generated ~page_index:0
  in
  let detail_pages = Array.of_list detail_pages in
  let total = Array.length detail_pages in
  let blank = "<html><body><p>page not downloaded</p></body></html>" in
  Printf.printf "%-10s %-28s %-28s\n" "coverage" "CSP (P/R/F)"
    "Probabilistic (P/R/F)";
  List.iter
    (fun coverage ->
      let kept = max 1 (coverage * total / 100) in
      let details =
        Array.to_list
          (Array.mapi
             (fun i html ->
               (* Keep indices spread evenly across the table. *)
               if i * kept / total < (i + 1) * kept / total then html
               else blank)
             detail_pages)
      in
      let input = { Tabseg.Pipeline.list_pages; detail_pages = details } in
      let score method_ =
        let result = Tabseg.Api.segment ~method_ input in
        Format.asprintf "%a" Metrics.pp_prf
          (Scorer.score ~truth:page.Sites.truth
             result.Tabseg.Api.segmentation)
      in
      Printf.printf "%-10s %-28s %-28s\n"
        (Printf.sprintf "%d%%" coverage)
        (score Tabseg.Api.Csp)
        (score Tabseg.Api.Probabilistic))
    [ 100; 80; 60; 40; 20 ];
  section "Sweep: wall time vs table size (extension)";
  Printf.printf "%-10s %12s %12s %12s\n" "records" "pipeline" "csp"
    "prob(period)";
  List.iter
    (fun n ->
      let site =
        { (Sites.find "AlleghenyCounty") with
          Sites.name = Printf.sprintf "Scale%d" n;
          records_per_page = [ n; n ];
          seed = 4000 + n }
      in
      let generated = Sites.generate site in
      let list_pages, detail_pages =
        Sites.segmentation_input generated ~page_index:0
      in
      let input = { Tabseg.Pipeline.list_pages; detail_pages } in
      let time f =
        let started = Unix.gettimeofday () in
        f ();
        Unix.gettimeofday () -. started
      in
      let pipeline_time =
        time (fun () -> ignore (Tabseg.Pipeline.prepare input))
      in
      let prepared = Tabseg.Pipeline.prepare input in
      let csp_time =
        time (fun () -> ignore (Tabseg.Csp_segmenter.segment prepared))
      in
      let prob_time =
        time (fun () -> ignore (Tabseg.Prob_segmenter.segment prepared))
      in
      Printf.printf "%-10d %10.1fms %10.1fms %10.1fms\n" n
        (pipeline_time *. 1000.) (csp_time *. 1000.) (prob_time *. 1000.))
    [ 10; 20; 40; 80 ]

(* ------------------------------------------------------------------ *)
(* Fault sweep: throughput and accuracy vs injected fault rate         *)
(* ------------------------------------------------------------------ *)

(* The resilient-crawling scenario: sweep the fault rate from a healthy
   web to one where half the URLs misbehave, and watch recovery,
   accuracy and (virtual-time) throughput degrade. Smoke mode runs one
   transient-only point and fails the process when recovery or accuracy
   regress — the per-PR guard for the degraded pipeline. *)
let fault_sweep ?(smoke = false) () =
  section
    (if smoke then "Fault sweep (smoke): rate 0.1, one seed"
     else "Fault sweep: recovery/accuracy/throughput vs fault rate");
  let sites =
    if smoke then [ Sites.find "ButlerCounty" ]
    else [ Sites.find "ButlerCounty"; Sites.find "AlleghenyCounty" ]
  in
  let rates =
    if smoke then [ 0.1 ] else [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5 ]
  in
  let seeds = if smoke then [ 0 ] else [ 0; 1; 2 ] in
  let permanent_rate = if smoke then 0.0 else 0.1 in
  Printf.printf
    "%-8s %10s %8s %8s %8s %8s %10s %8s\n" "rate" "recovered" "damaged"
    "giveups" "retries" "trips" "pages/s" "mean F";
  let guard_failed = ref false in
  List.iter
    (fun rate ->
      let recovered = ref 0 and reachable = ref 0 in
      let damaged = ref 0 and giveups = ref 0 in
      let retries = ref 0 and trips = ref 0 in
      let elapsed_ms = ref 0 and fetched = ref 0 in
      let fs = ref [] in
      List.iter
        (fun site ->
          let generated = Sites.generate site in
          List.iter
            (fun seed ->
              let graph = Tabseg_navigator.Simulate.graph_of_site generated in
              let source =
                if rate > 0. then
                  Tabseg_navigator.Faults.wrap
                    ~config:
                      {
                        Tabseg_navigator.Faults.default_config with
                        Tabseg_navigator.Faults.seed = seed;
                        fault_rate = rate;
                        permanent_rate;
                      }
                    graph
                else Tabseg_navigator.Faults.pristine graph
              in
              let report = Tabseg_navigator.Auto.run_resilient source in
              let crawl = report.Tabseg_navigator.Auto.crawl in
              recovered :=
                !recovered
                + crawl.Tabseg_navigator.Crawler.pages_ok
                + crawl.Tabseg_navigator.Crawler.pages_damaged;
              reachable := !reachable + Tabseg_navigator.Webgraph.size graph;
              damaged :=
                !damaged + crawl.Tabseg_navigator.Crawler.pages_damaged;
              giveups := !giveups + crawl.Tabseg_navigator.Crawler.giveups;
              retries := !retries + crawl.Tabseg_navigator.Crawler.retries;
              trips :=
                !trips + crawl.Tabseg_navigator.Crawler.breaker_trips;
              elapsed_ms :=
                !elapsed_ms + crawl.Tabseg_navigator.Crawler.elapsed_ms;
              fetched :=
                !fetched + report.Tabseg_navigator.Auto.pages_fetched;
              List.iter
                (fun result ->
                  match
                    Tabseg_navigator.Simulate.truth_for generated
                      result.Tabseg_navigator.Auto.list_url
                  with
                  | None -> ()
                  | Some truth ->
                    fs :=
                      Metrics.f_measure
                        (Scorer.score ~truth
                           result.Tabseg_navigator.Auto.segmentation)
                      :: !fs)
                report.Tabseg_navigator.Auto.results)
            seeds)
        sites;
      let recovery = float_of_int !recovered /. float_of_int !reachable in
      let mean_f =
        if !fs = [] then 0.
        else List.fold_left ( +. ) 0. !fs /. float_of_int (List.length !fs)
      in
      let throughput =
        (* virtual pages per virtual second; infinite on a zero-latency
           healthy web, so print it as a dash there *)
        if !elapsed_ms = 0 then nan
        else float_of_int !fetched /. (float_of_int !elapsed_ms /. 1000.)
      in
      Printf.printf "%-8.2f %9.1f%% %8d %8d %8d %8d %10s %8.3f\n" rate
        (100. *. recovery) !damaged !giveups !retries !trips
        (if Float.is_nan throughput then "-"
         else Printf.sprintf "%.1f" throughput)
        mean_f;
      if smoke && (recovery < 0.95 || mean_f < 0.9) then begin
        guard_failed := true;
        Printf.printf
          "SMOKE FAILURE: recovery %.3f (need >= 0.95), mean F %.3f (need \
           >= 0.9)\n"
          recovery mean_f
      end)
    rates;
  if smoke then
    if !guard_failed then exit 1
    else Printf.printf "smoke ok: degraded-mode recovery and accuracy hold\n"

(* ------------------------------------------------------------------ *)
(* Throughput: the serving layer under domain and cache sweeps          *)
(* ------------------------------------------------------------------ *)

module Serve = Tabseg_serve

(* Page 0 of each of the twelve sites, as service requests. *)
let throughput_requests () =
  List.map
    (fun site ->
      let generated = Sites.generate site in
      let list_pages, detail_pages =
        Sites.segmentation_input generated ~page_index:0
      in
      {
        Serve.Service.id = site.Sites.name;
        site = site.Sites.name;
        input = { Tabseg.Pipeline.list_pages; detail_pages };
      })
    Sites.all

let render_responses responses =
  List.map
    (fun (response : Serve.Service.response) ->
      match response.Serve.Service.outcome with
      | Ok result ->
        Format.asprintf "%a" Tabseg.Segmentation.pp
          result.Tabseg.Api.segmentation
      | Error error -> "ERROR: " ^ Serve.Service.error_message error)
    responses

type throughput_point = {
  workload : string;  (* "cpu" | "io" *)
  jobs : int;
  cache_on : bool;
  requests : int;
  seconds : float;
  rps : float;
  speedup_vs_1 : float;  (* filled in a second pass *)
  result_hit_rate : float;  (* warm rounds only; 0 with cache off *)
  template_hit_rate : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  deterministic : bool;
}

(* One (workload, jobs, cache) cell: a cold round then [warm] warm
   rounds through one service instance. *)
let throughput_point ~workload ~fetch_s ~jobs ~cache_on ~warm ~requests
    ~reference =
  let config =
    {
      Serve.Service.default_config with
      Serve.Service.jobs;
      cache = (if cache_on then Some Serve.Cache.default_config else None);
      simulated_fetch_s = fetch_s;
    }
  in
  let service = Serve.Service.create ~config () in
  Fun.protect ~finally:(fun () -> Serve.Service.shutdown service)
  @@ fun () ->
  let deterministic = ref true in
  let run_round () =
    let responses = Serve.Service.run_batch service requests in
    if render_responses responses <> reference then deterministic := false
  in
  let started = Unix.gettimeofday () in
  run_round ();
  let after_cold = Serve.Service.cache_stats service in
  for _ = 1 to warm do
    run_round ()
  done;
  let seconds = Unix.gettimeofday () -. started in
  let total_requests = (1 + warm) * List.length requests in
  let warm_rate select =
    match (after_cold, Serve.Service.cache_stats service) with
    | Some cold, Some final ->
      let (c : Serve.Shard.stats) = select cold in
      let (f : Serve.Shard.stats) = select final in
      let hits = f.Serve.Shard.hits - c.Serve.Shard.hits in
      let misses = f.Serve.Shard.misses - c.Serve.Shard.misses in
      if hits + misses = 0 then 0.
      else float_of_int hits /. float_of_int (hits + misses)
    | _ -> 0.
  in
  let latency =
    Serve.Metrics.summary
      (Serve.Metrics.histogram
         (Serve.Service.metrics service)
         "request.seconds")
  in
  {
    workload;
    jobs;
    cache_on;
    requests = total_requests;
    seconds;
    rps = float_of_int total_requests /. seconds;
    speedup_vs_1 = 1.;
    result_hit_rate = warm_rate (fun (s : Serve.Cache.stats) -> s.Serve.Cache.results);
    template_hit_rate =
      warm_rate (fun (s : Serve.Cache.stats) -> s.Serve.Cache.templates);
    p50_ms = latency.Serve.Metrics.p50 *. 1000.;
    p95_ms = latency.Serve.Metrics.p95 *. 1000.;
    p99_ms = latency.Serve.Metrics.p99 *. 1000.;
    deterministic = !deterministic;
  }

let throughput_json points =
  let point_json p =
    Printf.sprintf
      "    {\"workload\": \"%s\", \"jobs\": %d, \"cache\": %b, \
       \"requests\": %d, \"seconds\": %.4f, \"rps\": %.2f, \
       \"speedup_vs_1\": %.3f, \"result_hit_rate\": %.3f, \
       \"template_hit_rate\": %.3f, \"p50_ms\": %.3f, \"p95_ms\": %.3f, \
       \"p99_ms\": %.3f, \"deterministic\": %b}"
      p.workload p.jobs p.cache_on p.requests p.seconds p.rps p.speedup_vs_1
      p.result_hit_rate p.template_hit_rate p.p50_ms p.p95_ms p.p99_ms
      p.deterministic
  in
  Printf.sprintf
    "{\n  \"bench\": \"serve.throughput\",\n  \"sites\": %d,\n  \
     \"recommended_domains\": %d,\n  \"minor_heap_words\": %d,\n  \
     \"sweep\": [\n%s\n  ]\n}\n"
    (List.length Sites.all)
    (Domain.recommended_domain_count ())
    (Gc.get ()).Gc.minor_heap_size
    (String.concat ",\n" (List.map point_json points))

(* The serving benchmark: sweep worker domains (1/2/4) and cache on/off
   over the 12-site workload, in two regimes: "cpu" (pure in-memory
   segmentation — domain speedup is bounded by hardware cores) and "io"
   (each cache-missing request also waits out a simulated 750 ms page
   fetch, the regime a live crawler-segmenter serves in — the pool
   overlaps the waits regardless of core count).

   Multi-domain OCaml pays a stop-the-world rendezvous per minor
   collection, and segmentation allocates heavily; a larger minor heap
   makes collections rare enough that the rendezvous cost stops
   dominating (on a 1-core host it is the difference between 2 domains
   running 2.4x SLOWER and breaking even). The minor heap arena is
   reserved at process start, so Gc.set cannot grow it from inside —
   run via `make bench-throughput`, which sets OCAMLRUNPARAM=s=8M; the
   header and JSON record the size actually in force. *)
let throughput ?(json = false) () =
  section "Throughput: serve layer, domains x cache sweep (12 sites)";
  Printf.printf "(1 cold + 2 warm rounds per cell; %d hardware domain(s) \
                 recommended; minor heap %d words%s)\n"
    (Domain.recommended_domain_count ())
    (Gc.get ()).Gc.minor_heap_size
    (if (Gc.get ()).Gc.minor_heap_size < 4 * 1024 * 1024 then
       " — small for multi-domain runs; use `make bench-throughput`"
     else "");
  let requests = throughput_requests () in
  let reference =
    (* The sequential, uncached rendering every cell must reproduce. *)
    render_responses
      (let service =
         Serve.Service.create
           ~config:
             { Serve.Service.default_config with
               Serve.Service.jobs = 1; cache = None }
           ()
       in
       Fun.protect ~finally:(fun () -> Serve.Service.shutdown service)
       @@ fun () -> Serve.Service.run_batch service requests)
  in
  let cells =
    List.concat_map
      (fun (workload, fetch_s) ->
        List.concat_map
          (fun jobs ->
            List.map
              (fun cache_on ->
                throughput_point ~workload ~fetch_s ~jobs ~cache_on ~warm:2
                  ~requests ~reference)
              [ false; true ])
          [ 1; 2; 4 ])
      [ ("cpu", 0.); ("io", 0.75) ]
  in
  let baseline workload cache_on =
    match
      List.find_opt
        (fun p -> p.workload = workload && p.jobs = 1 && p.cache_on = cache_on)
        cells
    with
    | Some p -> p.rps
    | None -> nan
  in
  let points =
    List.map
      (fun p ->
        { p with speedup_vs_1 = p.rps /. baseline p.workload p.cache_on })
      cells
  in
  Printf.printf "%-5s %5s %6s %8s %9s %8s %9s %9s %9s %6s\n" "load" "jobs"
    "cache" "req/s" "speedup" "hit%" "p50" "p95" "p99" "ok";
  List.iter
    (fun p ->
      Printf.printf
        "%-5s %5d %6s %8.2f %8.2fx %7.1f%% %7.1fms %7.1fms %7.1fms %6s\n"
        p.workload p.jobs
        (if p.cache_on then "on" else "off")
        p.rps p.speedup_vs_1
        (100. *. p.result_hit_rate)
        p.p50_ms p.p95_ms p.p99_ms
        (if p.deterministic then "yes" else "NO");
      if not p.deterministic then
        Printf.printf
          "WARNING: %s jobs=%d cache=%b diverged from the sequential \
           reference\n"
          p.workload p.jobs p.cache_on)
    points;
  if json then begin
    let path = "BENCH_serve.json" in
    let oc = open_out path in
    output_string oc (throughput_json points);
    close_out oc;
    Printf.printf "\nwrote %s\n" path
  end;
  points

(* ------------------------------------------------------------------ *)
(* Store: cold vs warm start through the persistent tier               *)
(* ------------------------------------------------------------------ *)

module Store = Tabseg_store.Store

let temp_store_dir prefix =
  let path = Filename.temp_file prefix ".tabstore" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun name -> Sys.remove (Filename.concat dir name))
      (Sys.readdir dir);
    Unix.rmdir dir
  end

let persist_counts service =
  match Serve.Service.cache_stats service with
  | Some { Serve.Cache.persist = Some p; _ } ->
    (p.Serve.Cache.template_hits, p.Serve.Cache.result_hits)
  | _ -> (0, 0)

(* One service lifetime over [requests] against [store_dir]: returns
   (renders, seconds, L2 template hits, L2 result hits). *)
let store_round ~method_ ~store_dir requests =
  let config =
    {
      Serve.Service.default_config with
      Serve.Service.method_;
      store_dir = Some store_dir;
    }
  in
  let service = Serve.Service.create ~config () in
  Fun.protect ~finally:(fun () -> Serve.Service.shutdown service)
  @@ fun () ->
  let started = Unix.gettimeofday () in
  let responses = Serve.Service.run_batch service requests in
  let seconds = Unix.gettimeofday () -. started in
  let tpl_hits, res_hits = persist_counts service in
  (render_responses responses, seconds, tpl_hits, res_hits)

(* Compaction behaviour in isolation: append synthetic entries well past
   a small budget and watch the log stay bounded. *)
let store_compaction_probe () =
  let dir = temp_store_dir "tabseg_compact" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let config = { Store.default_config with Store.capacity_mb = 1 } in
  let store = Store.open_store ~config dir in
  Fun.protect ~finally:(fun () -> Store.close store) @@ fun () ->
  let value = String.make (64 * 1024) 'v' in
  let puts = 64 (* 4 MB through a 1 MB budget *) in
  for i = 1 to puts do
    ignore (Store.put store ~key:(Printf.sprintf "key-%04d" i) value)
  done;
  let s = Store.stats store in
  (* the newest entries must have survived every compaction *)
  let newest_alive = Store.mem store (Printf.sprintf "key-%04d" puts) in
  (puts, s, newest_alive)

(* The store benchmark: the 12-site corpus served cold (empty store),
   then again by a "restarted" process (fresh in-memory caches, same
   store directory) — the restart must be pure lookup. A third restart
   under the other segmentation method re-pays only the back half: its
   result keys miss but every template comes from the store. *)
let store_bench ?(json = false) () =
  section "Store: cold vs warm start through the persistent tier";
  let requests = throughput_requests () in
  let dir = temp_store_dir "tabseg_bench" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let method_ = Tabseg.Api.Probabilistic in
  let cold, cold_s, _, _ = store_round ~method_ ~store_dir:dir requests in
  let warm, warm_s, _, warm_res_hits =
    store_round ~method_ ~store_dir:dir requests
  in
  let _, csp_s, csp_tpl_hits, _ =
    store_round ~method_:Tabseg.Api.Csp ~store_dir:dir requests
  in
  let identical = cold = warm in
  let n = List.length requests in
  let store_bytes =
    (Unix.stat (Filename.concat dir "current.seg")).Unix.st_size
  in
  Printf.printf "%-34s %8.1f ms  (%d sites, empty store)\n" "cold start"
    (cold_s *. 1000.) n;
  Printf.printf
    "%-34s %8.1f ms  (%d/%d requests from the store, identical: %b)\n"
    "warm restart" (warm_s *. 1000.) warm_res_hits n identical;
  Printf.printf
    "%-34s %8.1f ms  (%d/%d templates from the store)\n"
    "warm restart, other method" (csp_s *. 1000.) csp_tpl_hits n;
  Printf.printf "%-34s %8.1f KB on disk\n" "store size"
    (float_of_int store_bytes /. 1024.);
  let puts, cs, newest_alive = store_compaction_probe () in
  Printf.printf
    "compaction: %d x 64KB puts through a 1 MB budget -> %d compactions, \
     %d live entries, %d KB file (newest survives: %b)\n"
    puts cs.Store.compactions cs.Store.entries
    (cs.Store.file_bytes / 1024) newest_alive;
  if json then begin
    let path = "BENCH_store.json" in
    let oc = open_out path in
    Printf.fprintf oc
      "{\n  \"bench\": \"store.warm_start\",\n  \"sites\": %d,\n  \
       \"cold_seconds\": %.4f,\n  \"warm_seconds\": %.4f,\n  \
       \"warm_speedup\": %.2f,\n  \"warm_result_hits\": %d,\n  \
       \"warm_identical\": %b,\n  \"cross_method_seconds\": %.4f,\n  \
       \"cross_method_template_hits\": %d,\n  \"store_bytes\": %d,\n  \
       \"compaction\": {\"puts\": %d, \"put_bytes\": %d, \"budget_bytes\": \
       %d, \"compactions\": %d, \"live_entries\": %d, \"file_bytes\": %d, \
       \"newest_survives\": %b}\n}\n"
      n cold_s warm_s
      (if warm_s > 0. then cold_s /. warm_s else 0.)
      warm_res_hits identical csp_s csp_tpl_hits store_bytes puts
      (puts * 64 * 1024) (1024 * 1024) cs.Store.compactions cs.Store.entries
      cs.Store.file_bytes newest_alive;
    close_out oc;
    Printf.printf "\nwrote %s\n" path
  end

(* The per-PR store guard: raw write -> reopen -> byte-identical read
   (blobs chosen to embed the record framing bytes), then the warm-start
   guarantee on one site — a restarted service must answer the repeated
   corpus entirely from the store, byte-identically. *)
let store_smoke () =
  section "Store smoke: reopen byte-identity + warm-start guarantee";
  let ok = ref true in
  let fail fmt =
    Printf.ksprintf
      (fun message ->
        ok := false;
        Printf.printf "SMOKE FAILURE: %s\n" message)
      fmt
  in
  (* 1. raw byte-identity across a close/reopen *)
  let dir = temp_store_dir "tabseg_smoke" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let blobs =
    [
      ("empty", "");
      ("binary", "\x00\x01TSRC\xff\xfe" ^ String.make 4096 '\x00');
      ("header", "TABSTORE embedded header bytes");
      ("big", String.init 100_000 (fun i -> Char.chr (i land 0xff)));
    ]
  in
  let store = Store.open_store dir in
  List.iter
    (fun (key, value) ->
      if not (Store.put store ~key value) then fail "put %s refused" key)
    blobs;
  Store.close store;
  let store = Store.open_store dir in
  List.iter
    (fun (key, value) ->
      match Store.get store key with
      | Some read when read = value -> ()
      | Some _ -> fail "reopened read of %s differs" key
      | None -> fail "reopened store lost %s" key)
    blobs;
  Store.close store;
  (* 2. warm-start guarantee on one site *)
  let site = Sites.find "ButlerCounty" in
  let generated = Sites.generate site in
  let requests =
    List.mapi
      (fun page_index _ ->
        let list_pages, detail_pages =
          Sites.segmentation_input generated ~page_index
        in
        {
          Serve.Service.id = Printf.sprintf "%s#%d" site.Sites.name page_index;
          site = site.Sites.name;
          input = { Tabseg.Pipeline.list_pages; detail_pages };
        })
      generated.Sites.pages
  in
  let service_dir = temp_store_dir "tabseg_smoke_srv" in
  Fun.protect ~finally:(fun () -> rm_rf service_dir) @@ fun () ->
  let method_ = Tabseg.Api.Probabilistic in
  let cold, _, _, _ = store_round ~method_ ~store_dir:service_dir requests in
  let warm, _, _, warm_res_hits =
    store_round ~method_ ~store_dir:service_dir requests
  in
  if warm <> cold then fail "warm restart diverged from the cold run";
  if warm_res_hits < List.length requests then
    fail "only %d/%d warm requests served from the store" warm_res_hits
      (List.length requests);
  let _, _, csp_tpl_hits, _ =
    store_round ~method_:Tabseg.Api.Csp ~store_dir:service_dir requests
  in
  if csp_tpl_hits < List.length requests then
    fail "only %d/%d templates served from the store under the other method"
      csp_tpl_hits (List.length requests);
  if not !ok then exit 1;
  Printf.printf
    "smoke ok: reopen byte-identity, %d/%d warm store hits, %d/%d \
     cross-method template hits\n"
    warm_res_hits (List.length requests) csp_tpl_hits
    (List.length requests)

(* The per-PR serve guard: on one generated site, a 2-domain cached run
   must reproduce the sequential segmentation byte-for-byte, and the
   warm round must be served from the result memo. *)
let serve_smoke () =
  section "Serve smoke: 2-domain determinism + warm-cache identity";
  let site = Sites.find "ButlerCounty" in
  let generated = Sites.generate site in
  let requests =
    List.mapi
      (fun page_index _ ->
        let list_pages, detail_pages =
          Sites.segmentation_input generated ~page_index
        in
        {
          Serve.Service.id = Printf.sprintf "%s#%d" site.Sites.name page_index;
          site = site.Sites.name;
          input = { Tabseg.Pipeline.list_pages; detail_pages };
        })
      generated.Sites.pages
  in
  let sequential =
    List.map
      (fun (request : Serve.Service.request) ->
        match
          Tabseg.Api.segment_result ~method_:Tabseg.Api.Probabilistic
            request.Serve.Service.input
        with
        | Ok result ->
          Format.asprintf "%a" Tabseg.Segmentation.pp
            result.Tabseg.Api.segmentation
        | Error error -> "ERROR: " ^ Tabseg.Api.input_error_message error)
      requests
  in
  let service =
    Serve.Service.create
      ~config:{ Serve.Service.default_config with Serve.Service.jobs = 2 }
      ()
  in
  Fun.protect ~finally:(fun () -> Serve.Service.shutdown service)
  @@ fun () ->
  let cold = render_responses (Serve.Service.run_batch service requests) in
  let warm_responses = Serve.Service.run_batch service requests in
  let warm = render_responses warm_responses in
  let hits =
    List.length
      (List.filter
         (fun (r : Serve.Service.response) -> r.Serve.Service.cache_hit)
         warm_responses)
  in
  let ok = ref true in
  if cold <> sequential then begin
    ok := false;
    Printf.printf
      "SMOKE FAILURE: 2-domain cold run diverged from sequential\n"
  end;
  if warm <> sequential then begin
    ok := false;
    Printf.printf
      "SMOKE FAILURE: warm-cache run diverged from sequential\n"
  end;
  if hits < List.length requests then begin
    ok := false;
    Printf.printf "SMOKE FAILURE: only %d/%d warm requests hit the memo\n"
      hits (List.length requests)
  end;
  if not !ok then exit 1;
  Printf.printf
    "smoke ok: parallel (2 domains) = sequential, %d/%d warm hits\n" hits
    (List.length requests)

(* ------------------------------------------------------------------ *)
(* Gateway: the multi-process front-end past the domain ceiling         *)
(* ------------------------------------------------------------------ *)

module Gw = Tabseg_gateway.Gateway

let render_gateway_responses responses =
  List.map
    (fun (response : Gw.response) ->
      match response.Gw.outcome with
      | Ok result ->
        Format.asprintf "%a" Tabseg.Segmentation.pp
          result.Tabseg.Api.segmentation
      | Error error -> "ERROR: " ^ Gw.error_message error)
    responses

(* The sequential, uncached reference rendering — what every gateway
   configuration must reproduce byte for byte. *)
let gateway_reference requests =
  render_responses
    (let service =
       Serve.Service.create
         ~config:
           { Serve.Service.default_config with
             Serve.Service.jobs = 1; cache = None }
         ()
     in
     Fun.protect ~finally:(fun () -> Serve.Service.shutdown service)
     @@ fun () -> Serve.Service.run_batch service requests)

type gateway_point = {
  g_workload : string;  (* "cpu" | "io" *)
  g_procs : int;  (* worker processes (1 = inline, no fork) *)
  g_jobs : int;  (* domains inside each worker *)
  g_store : string;  (* "cold" | "warm" *)
  g_requests : int;
  g_seconds : float;
  g_rps : float;
  g_speedup_vs_seq : float;  (* filled in a second pass *)
  g_deterministic : bool;
}

(* One (workload, procs, jobs) configuration over a throwaway store
   directory: a cold round (empty store, forks and lock acquisition
   included in wall time only via create, not per-request), then warm
   rounds against the now-populated store. *)
let gateway_cell ~workload ~fetch_s ~procs ~jobs ~warm_rounds ~requests
    ~reference =
  let dir = temp_store_dir "tabseg_gw" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let config =
    {
      Gw.default_config with
      Gw.procs;
      service =
        {
          Serve.Service.default_config with
          Serve.Service.jobs;
          simulated_fetch_s = fetch_s;
          store_dir = Some dir;
        };
    }
  in
  let gateway = Gw.create ~config () in
  Fun.protect ~finally:(fun () -> Gw.shutdown gateway) @@ fun () ->
  let round () =
    render_gateway_responses (Gw.run_batch gateway requests) = reference
  in
  let point store seconds rounds ok =
    let total = rounds * List.length requests in
    {
      g_workload = workload;
      g_procs = procs;
      g_jobs = jobs;
      g_store = store;
      g_requests = total;
      g_seconds = seconds;
      g_rps = float_of_int total /. seconds;
      g_speedup_vs_seq = 1.;
      g_deterministic = ok;
    }
  in
  let started = Unix.gettimeofday () in
  let cold_ok = round () in
  let cold_seconds = Unix.gettimeofday () -. started in
  let warm_ok = ref true in
  let started = Unix.gettimeofday () in
  for _ = 1 to warm_rounds do
    if not (round ()) then warm_ok := false
  done;
  let warm_seconds = Unix.gettimeofday () -. started in
  [
    point "cold" cold_seconds 1 cold_ok;
    point "warm" warm_seconds warm_rounds !warm_ok;
  ]

let gateway_json points =
  let point_json p =
    Printf.sprintf
      "    {\"workload\": \"%s\", \"procs\": %d, \"jobs\": %d, \
       \"store\": \"%s\", \"requests\": %d, \"seconds\": %.4f, \
       \"rps\": %.2f, \"speedup_vs_seq\": %.3f, \"deterministic\": %b}"
      p.g_workload p.g_procs p.g_jobs p.g_store p.g_requests p.g_seconds
      p.g_rps p.g_speedup_vs_seq p.g_deterministic
  in
  Printf.sprintf
    "{\n  \"bench\": \"gateway.throughput\",\n  \"sites\": %d,\n  \
     \"recommended_domains\": %d,\n  \"sweep\": [\n%s\n  ]\n}\n"
    (List.length Sites.all)
    (Domain.recommended_domain_count ())
    (String.concat ",\n" (List.map point_json points))

(* The gateway benchmark: procs 1/2/4 over a shared throwaway store, in
   the cpu and io regimes, cold and warm store rounds — plus a
   domains=4 single-process cell so the JSON carries the in-process
   ceiling (PR 2's rendezvous-bound sweep) next to the process numbers
   it is meant to be compared against. Worker processes share no minor
   heap, so they pay no stop-the-world rendezvous: on a multi-core host
   the cpu regime scales with procs where domains stall. Responses are
   checked byte-for-byte against the sequential reference in every
   cell. *)
let gateway_bench ?(json = false) () =
  section "Gateway: procs x store sweep (12 sites, shared store)";
  Printf.printf
    "(1 cold + warm rounds per cell; %d hardware core(s); procs=1 is \
     inline, jobs>1 are domains inside one process)\n"
    (Domain.recommended_domain_count ());
  let requests = throughput_requests () in
  let reference = gateway_reference requests in
  (* OCaml forbids [Unix.fork] once any domain has ever been spawned in
     the process, so every forking cell must run before the jobs=4
     (domain) comparison cell — and if an earlier bench target already
     spawned domains in this process, the forking cells are skipped
     with a note rather than killing the whole run (use
     `make bench-gateway` for a clean process). *)
  let safe_cell ~workload ~fetch_s ~procs ~jobs ~warm_rounds =
    try
      gateway_cell ~workload ~fetch_s ~procs ~jobs ~warm_rounds ~requests
        ~reference
    with Failure message ->
      Printf.printf
        "skipping procs=%d %s cell: %s (run `make bench-gateway` for a \
         fresh process)\n"
        procs workload message;
      []
  in
  let regimes = [ ("cpu", 0., 2); ("io", 0.75, 1) ] in
  let forked_cells =
    List.concat_map
      (fun (workload, fetch_s, warm_rounds) ->
        List.concat_map
          (fun (procs, jobs) ->
            safe_cell ~workload ~fetch_s ~procs ~jobs ~warm_rounds)
          [ (1, 1); (2, 1); (4, 1) ])
      regimes
  in
  let domain_cells =
    List.concat_map
      (fun (workload, fetch_s, warm_rounds) ->
        safe_cell ~workload ~fetch_s ~procs:1 ~jobs:4 ~warm_rounds)
      regimes
  in
  let cells = forked_cells @ domain_cells in
  let baseline workload store =
    match
      List.find_opt
        (fun p ->
          p.g_workload = workload && p.g_store = store && p.g_procs = 1
          && p.g_jobs = 1)
        cells
    with
    | Some p -> p.g_rps
    | None -> nan
  in
  let points =
    List.map
      (fun p ->
        { p with
          g_speedup_vs_seq = p.g_rps /. baseline p.g_workload p.g_store })
      cells
  in
  Printf.printf "%-5s %6s %5s %6s %8s %9s %6s\n" "load" "procs" "jobs"
    "store" "req/s" "speedup" "ok";
  List.iter
    (fun p ->
      Printf.printf "%-5s %6d %5d %6s %8.2f %8.2fx %6s\n" p.g_workload
        p.g_procs p.g_jobs p.g_store p.g_rps p.g_speedup_vs_seq
        (if p.g_deterministic then "yes" else "NO");
      if not p.g_deterministic then
        Printf.printf
          "WARNING: %s procs=%d jobs=%d %s diverged from the sequential \
           reference\n"
          p.g_workload p.g_procs p.g_jobs p.g_store)
    points;
  if json then begin
    let path = "BENCH_gateway.json" in
    let oc = open_out path in
    output_string oc (gateway_json points);
    close_out oc;
    Printf.printf "\nwrote %s\n" path
  end;
  points

(* The per-PR gateway guard: procs=2 must reproduce the sequential
   segmentation byte for byte, and a worker killed mid-request must be
   restarted with the request re-dispatched — the caller sees the
   correct result, not a typed error. *)
let gateway_smoke () =
  section "Gateway smoke: procs=2 byte-identity + worker-kill recovery";
  let site = Sites.find "ButlerCounty" in
  let generated = Sites.generate site in
  let requests =
    List.mapi
      (fun page_index _ ->
        let list_pages, detail_pages =
          Sites.segmentation_input generated ~page_index
        in
        {
          Serve.Service.id = Printf.sprintf "%s#%d" site.Sites.name page_index;
          site = site.Sites.name;
          input = { Tabseg.Pipeline.list_pages; detail_pages };
        })
      generated.Sites.pages
  in
  let reference = gateway_reference requests in
  let ok = ref true in
  let fail fmt =
    Printf.ksprintf
      (fun message ->
        ok := false;
        Printf.printf "SMOKE FAILURE: %s\n" message)
      fmt
  in
  (* 1. procs=2 responses byte-identical to procs=1 (inline). *)
  let run_procs procs fault =
    let gateway =
      Gw.create ~config:{ Gw.default_config with Gw.procs; backoff_s = 0.01 }
        ()
    in
    Fun.protect ~finally:(fun () -> Gw.shutdown gateway) @@ fun () ->
    let rendered =
      render_gateway_responses (Gw.run_batch gateway ?fault requests)
    in
    let restarts =
      Serve.Metrics.counter_value
        (Serve.Metrics.counter (Gw.metrics gateway)
           "gateway.worker_restarts")
    in
    (rendered, restarts)
  in
  let inline, _ = run_procs 1 None in
  if inline <> reference then fail "procs=1 diverged from sequential";
  let forked, _ = run_procs 2 None in
  if forked <> inline then fail "procs=2 diverged from procs=1";
  (* 2. a worker crash mid-request recovers to the correct result. *)
  let marker = Filename.temp_file "tabseg_gw_smoke" ".crash" in
  Fun.protect ~finally:(fun () ->
      if Sys.file_exists marker then Sys.remove marker)
  @@ fun () ->
  let poison = (List.hd requests).Serve.Service.id in
  let fault (request : Serve.Service.request) =
    if request.Serve.Service.id = poison then
      Tabseg_gateway.Wire.Crash_if_exists marker
    else Tabseg_gateway.Wire.No_fault
  in
  let recovered, restarts = run_procs 2 (Some fault) in
  if recovered <> reference then
    fail "responses after worker crash diverged from sequential";
  if restarts < 1 then fail "worker crash was not supervised (no restart)";
  if not !ok then exit 1;
  Printf.printf
    "smoke ok: procs=2 = procs=1 = sequential (%d pages), crash recovery \
     via %d restart(s) returned correct results\n"
    (List.length requests) restarts

(* ------------------------------------------------------------------ *)
(* Gateway overload: graceful degradation under Zipf-skewed stampedes   *)
(* ------------------------------------------------------------------ *)

(* Skewed site popularity: rank r drawn with probability proportional
   to 1/r^exponent, from a seeded generator — the heavy-tailed traffic
   shape of large list-page corpora, reproducible run to run. The CDF
   construction is shared with the daemon load generator
   ({!Prng.zipf_cdf}); the uniform draw stays on this bench's own
   [Random.State]. *)
let zipf_sampler ~state ~n ~exponent =
  let cdf = Prng.zipf_cdf ~n ~exponent in
  fun () -> Prng.zipf_index cdf (Random.State.float state 1.0)

(* Every overload request reuses one small page set under 12 synthetic
   site labels: the label drives affinity and quotas, the shared input
   makes the worker's result memo absorb the segmentation cost, and an
   injected [Sleep_s] models the service time — so the bench measures
   queueing and the degradation ladder, not the segmenter (essential on
   a 1-core runner, where sleeps overlap across processes but compute
   does not). *)
let overload_input () =
  let site = Sites.find "ButlerCounty" in
  let generated = Sites.generate site in
  let list_pages, detail_pages =
    Sites.segmentation_input generated ~page_index:0
  in
  { Tabseg.Pipeline.list_pages; detail_pages }

let overload_labels =
  Array.init 12 (fun i -> Printf.sprintf "overload-site-%02d" i)

type overload_mode = {
  om_name : string;
  om_spill : int option;
  om_shed : bool;
  om_quota : float option;
}

let overload_modes =
  [
    { om_name = "static"; om_spill = None; om_shed = false; om_quota = None };
    { om_name = "spill"; om_spill = Some 2; om_shed = false; om_quota = None };
    {
      om_name = "spill+shed";
      om_spill = Some 2;
      om_shed = true;
      om_quota = None;
    };
    {
      om_name = "full";
      om_spill = Some 2;
      om_shed = true;
      om_quota = Some 25.0;
    };
  ]

type overload_point = {
  o_rate : int;  (* offered arrivals per second *)
  o_mode : string;
  o_offered : int;
  o_ok : int;  (* in-deadline completions *)
  o_goodput : float;  (* ok / wall seconds *)
  o_shed : int;
  o_spilled : int;
  o_quota : int;
  o_deadline_missed : int;
  o_p50_ms : float;
  o_p95_ms : float;
  o_p99_ms : float;
  o_max_backlog : int;  (* worst per-worker frame backlog observed *)
  o_restarts : int;
  o_deterministic : bool;
}

(* One (mode, rate) cell: a fresh 2-proc gateway, warmed, then [waves]
   bursts of rate*wave_s Zipf-drawn requests submitted open-loop (each
   wave is offered regardless of how the last one fared). Goodput
   counts only in-deadline completions, every one checked byte-for-byte
   against the sequential reference. *)
let overload_cell ~mode ~rate ~waves ~wave_s ~service_s ~deadline_s ~input
    ~reference =
  let config =
    {
      Gw.default_config with
      Gw.procs = 2;
      deadline_s = Some deadline_s;
      spill_threshold = mode.om_spill;
      shed = mode.om_shed;
      site_quota_rps = mode.om_quota;
    }
  in
  let gateway = Gw.create ~config () in
  Fun.protect ~finally:(fun () -> Gw.shutdown gateway) @@ fun () ->
  let counter name =
    Serve.Metrics.counter_value
      (Serve.Metrics.counter (Gw.metrics gateway) name)
  in
  let backlog () =
    Array.fold_left
      (fun acc i ->
        max acc
          (int_of_float
             (Serve.Metrics.gauge_value
                (Serve.Metrics.gauge (Gw.metrics gateway)
                   (Printf.sprintf "gateway.worker%d.inflight" i)))))
      0 [| 0; 1 |]
  in
  let request ~id label = { Serve.Service.id = id; site = label; input } in
  let slow _ = Tabseg_gateway.Wire.Sleep_s service_s in
  (* Warmup 1 populates both workers' result memos (real segmentation
     happens once per worker); warmup 2 pulls the per-worker EWMAs from
     that cold sample toward the modeled service time. Not counted. *)
  let warm tag fault =
    ignore
      (Gw.run_batch gateway ?fault
         (Array.to_list
            (Array.map
               (fun label -> request ~id:(tag ^ label) label)
               overload_labels)))
  in
  warm "w1-" None;
  warm "w2-" (Some slow);
  let base_shed = counter "gateway.shed" in
  let base_spilled = counter "gateway.spilled" in
  let base_quota = counter "gateway.quota_rejected" in
  let base_missed = counter "gateway.deadline_exceeded" in
  let state = Random.State.make [| 4242; rate |] in
  let draw =
    zipf_sampler ~state ~n:(Array.length overload_labels) ~exponent:1.5
  in
  let per_wave = int_of_float (float_of_int rate *. wave_s) in
  let ok = ref 0 in
  let deterministic = ref true in
  let max_backlog = ref 0 in
  let started = Unix.gettimeofday () in
  for wave = 1 to waves do
    let requests =
      List.init per_wave (fun i ->
          request
            ~id:(Printf.sprintf "r%d-%d" wave i)
            overload_labels.(draw ()))
    in
    let wave_started = Unix.gettimeofday () in
    let responses = Gw.run_batch gateway ~fault:slow requests in
    List.iter
      (fun (response : Gw.response) ->
        match response.Gw.outcome with
        | Ok result ->
          incr ok;
          if
            Format.asprintf "%a" Tabseg.Segmentation.pp
              result.Tabseg.Api.segmentation
            <> reference
          then deterministic := false
        | Error _ -> ())
      responses;
    max_backlog := max !max_backlog (backlog ());
    (* Open-loop pacing: the next wave leaves on schedule even when
       this one resolved early (all shed, say). A congested wave runs
       ~deadline long and is already past its slot. *)
    let wall = Unix.gettimeofday () -. wave_started in
    if wall < wave_s then Unix.sleepf (wave_s -. wall)
  done;
  let elapsed = Unix.gettimeofday () -. started in
  let turnaround =
    Serve.Metrics.summary
      (Serve.Metrics.histogram (Gw.metrics gateway)
         "gateway.turnaround_seconds")
  in
  let ms x = x *. 1000. in
  {
    o_rate = rate;
    o_mode = mode.om_name;
    o_offered = per_wave * waves;
    o_ok = !ok;
    o_goodput = float_of_int !ok /. elapsed;
    o_shed = counter "gateway.shed" - base_shed;
    o_spilled = counter "gateway.spilled" - base_spilled;
    o_quota = counter "gateway.quota_rejected" - base_quota;
    o_deadline_missed = counter "gateway.deadline_exceeded" - base_missed;
    o_p50_ms = ms turnaround.Serve.Metrics.p50;
    o_p95_ms = ms turnaround.Serve.Metrics.p95;
    o_p99_ms = ms turnaround.Serve.Metrics.p99;
    o_max_backlog = !max_backlog;
    o_restarts = counter "gateway.worker_restarts";
    o_deterministic = !deterministic;
  }

let overload_json ~rates ~waves ~wave_s ~service_s ~deadline_s points =
  let point_json p =
    Printf.sprintf
      "    {\"rate\": %d, \"mode\": \"%s\", \"offered\": %d, \"ok\": %d, \
       \"goodput_rps\": %.2f, \"shed\": %d, \"spilled\": %d, \
       \"quota_rejected\": %d, \"deadline_missed\": %d, \"p50_ms\": %.2f, \
       \"p95_ms\": %.2f, \"p99_ms\": %.2f, \"max_backlog\": %d, \
       \"restarts\": %d, \"deterministic\": %b}"
      p.o_rate p.o_mode p.o_offered p.o_ok p.o_goodput p.o_shed p.o_spilled
      p.o_quota p.o_deadline_missed p.o_p50_ms p.o_p95_ms p.o_p99_ms
      p.o_max_backlog p.o_restarts p.o_deterministic
  in
  let top_rate = List.fold_left max 0 rates in
  let goodput mode =
    match
      List.find_opt (fun p -> p.o_rate = top_rate && p.o_mode = mode) points
    with
    | Some p -> p.o_goodput
    | None -> nan
  in
  let static = goodput "static" and degraded = goodput "spill+shed" in
  Printf.sprintf
    "{\n  \"bench\": \"gateway.overload\",\n  \"procs\": 2,\n  \
     \"service_ms\": %.1f,\n  \"deadline_ms\": %.1f,\n  \
     \"zipf_exponent\": 1.5,\n  \"sites\": %d,\n  \"waves\": %d,\n  \
     \"wave_s\": %.2f,\n  \"seed\": 4242,\n  \"sweep\": [\n%s\n  ],\n  \
     \"top_rate\": %d,\n  \"goodput_static_at_top\": %.2f,\n  \
     \"goodput_degraded_at_top\": %.2f,\n  \"degradation_ratio_at_top\": \
     %.2f\n}\n"
    (service_s *. 1000.) (deadline_s *. 1000.)
    (Array.length overload_labels)
    waves wave_s
    (String.concat ",\n" (List.map point_json points))
    top_rate static degraded
    (degraded /. static)

(* The overload benchmark: arrival rates below, at ~1.6x, and at ~2.4x
   the fleet's service capacity (2 workers x 1/service_s), against each
   rung of the degradation ladder. The static baseline collapses — its
   workers grind through zombie work whose deadlines already passed, so
   in-deadline completions go to ~zero while backlogs grow without
   bound; shedding keeps the queues holding only winnable work and
   goodput pinned near capacity. Like the gateway bench, this must run
   in a fresh process (fork before any domain). *)
let overload_bench ?(json = false) () =
  section "Gateway overload: Zipf stampede x degradation ladder";
  let waves = 6 and wave_s = 0.5 in
  let service_s = 0.02 and deadline_s = 0.5 in
  let rates = [ 80; 160; 240 ] in
  Printf.printf
    "(procs=2, service %.0f ms, deadline %.0f ms, %d waves of %.1f s, \
     Zipf(1.5) over %d sites, seed 4242; fleet capacity ~%.0f req/s)\n"
    (service_s *. 1000.) (deadline_s *. 1000.) waves wave_s
    (Array.length overload_labels)
    (2. /. service_s);
  let input = overload_input () in
  let reference =
    List.hd
      (gateway_reference
         [ { Serve.Service.id = "ref"; site = "ref"; input } ])
  in
  let points =
    List.concat_map
      (fun rate ->
        List.map
          (fun mode ->
            overload_cell ~mode ~rate ~waves ~wave_s ~service_s ~deadline_s
              ~input ~reference)
          overload_modes)
      rates
  in
  Printf.printf "%5s %-10s %7s %5s %9s %6s %6s %6s %7s %8s %8s %3s\n" "rate"
    "mode" "offered" "ok" "goodput" "shed" "spill" "quota" "missed" "p95ms"
    "backlog" "ok?";
  List.iter
    (fun p ->
      Printf.printf "%5d %-10s %7d %5d %9.1f %6d %6d %6d %7d %8.1f %8d %3s\n"
        p.o_rate p.o_mode p.o_offered p.o_ok p.o_goodput p.o_shed p.o_spilled
        p.o_quota p.o_deadline_missed p.o_p95_ms p.o_max_backlog
        (if p.o_deterministic then "yes" else "NO"))
    points;
  if json then begin
    let path = "BENCH_overload.json" in
    let oc = open_out path in
    output_string oc
      (overload_json ~rates ~waves ~wave_s ~service_s ~deadline_s points);
    close_out oc;
    Printf.printf "\nwrote %s\n" path
  end;
  points

(* The per-PR overload guard: one fixed-seed skewed burst at ~1.6x
   capacity. The degraded gateway must keep goodput positive with the
   ladder demonstrably engaged (something shed, something spilled), no
   worker may crash or be restarted in either cell, and every completed
   response must stay byte-identical to the sequential reference. *)
let overload_smoke () =
  section "Overload smoke: skewed burst, goodput > 0, no worker crashes";
  let waves = 3 and wave_s = 0.5 in
  let service_s = 0.02 and deadline_s = 0.5 in
  let rate = 160 in
  let input = overload_input () in
  let reference =
    List.hd
      (gateway_reference
         [ { Serve.Service.id = "ref"; site = "ref"; input } ])
  in
  let cell mode =
    overload_cell ~mode ~rate ~waves ~wave_s ~service_s ~deadline_s ~input
      ~reference
  in
  let static = cell (List.nth overload_modes 0) in
  let degraded = cell (List.nth overload_modes 2) in
  let ok = ref true in
  let fail fmt =
    Printf.ksprintf
      (fun message ->
        ok := false;
        Printf.printf "SMOKE FAILURE: %s\n" message)
      fmt
  in
  if degraded.o_ok <= 0 then
    fail "degraded mode completed nothing within deadline";
  if degraded.o_shed <= 0 then fail "shedding never engaged";
  if degraded.o_spilled <= 0 then fail "spill never engaged";
  List.iter
    (fun p ->
      if p.o_restarts > 0 then
        fail "%s cell crashed/restarted %d worker(s)" p.o_mode p.o_restarts;
      if not p.o_deterministic then
        fail "%s cell diverged from the sequential reference" p.o_mode)
    [ static; degraded ];
  if not !ok then exit 1;
  Printf.printf
    "smoke ok: %d/%d in-deadline under a %d req/s skewed burst (static \
     baseline %d/%d), %d shed + %d spilled, no worker crashes, responses \
     byte-identical\n"
    degraded.o_ok degraded.o_offered rate static.o_ok static.o_offered
    degraded.o_shed degraded.o_spilled

(* ------------------------------------------------------------------ *)
(* Daemon: the socket front door under sustained concurrent load       *)
(* ------------------------------------------------------------------ *)

module Dm = Tabseg_daemon.Daemon
module Dproto = Tabseg_daemon.Protocol
module Dclient = Tabseg_daemon.Client
module Dload = Tabseg_daemon.Loadgen

(* Same trick as the overload bench: a handful of site labels over one
   shared input, so the workers' result memos absorb the segmentation
   cost and an injected [Sleep_s] models service time — the bench
   measures the socket edge, the pipelining and the drain choreography,
   not the segmenter. *)
let daemon_labels = Array.init 8 (fun i -> Printf.sprintf "daemon-site-%02d" i)
let daemon_sites input = Array.map (fun label -> (label, input)) daemon_labels

let daemon_expected reference =
  Array.to_list (Array.map (fun label -> (label, reference)) daemon_labels)

let daemon_config ?auth_token ?site_quota listen =
  {
    Dm.default_config with
    Dm.listen;
    auth_token;
    gateway =
      { Gw.default_config with Gw.procs = 2; site_quota_rps = site_quota };
  }

(* Counter snapshot over the wire — the daemon is a separate process,
   so its registry is only reachable through the Stats frame. *)
let daemon_stat ?auth_token address name =
  match Dclient.connect ~client:"bench-stats" ?auth_token address with
  | Error e -> failwith (Dclient.connect_error_message e)
  | Ok c ->
    Fun.protect ~finally:(fun () -> Dclient.close c)
    @@ fun () ->
    (match Dclient.stats c with
    | Ok stats -> ( try List.assoc name stats with Not_found -> nan)
    | Error e -> failwith (Dclient.error_message e))

(* One warm round through a short-lived client: populates each affinity
   worker's result memo so the measured window holds steady-state
   service, not two cold segmentations. *)
let daemon_warm ?auth_token address input =
  match Dclient.connect ~client:"bench-warm" ?auth_token address with
  | Error e -> failwith (Dclient.connect_error_message e)
  | Ok c ->
    Fun.protect ~finally:(fun () -> Dclient.close c)
    @@ fun () ->
    (match
       Dclient.submit_all c
         (Array.to_list
            (Array.map
               (fun label ->
                 { Serve.Service.id = "warm-" ^ label; site = label; input })
               daemon_labels))
     with
    | Ok _ -> ()
    | Error e -> failwith (Dclient.error_message e))

type daemon_point = {
  d_transport : string;  (* "unix" | "tcp" *)
  d_conns : int;
  d_pipeline : int;
  d_offered : int;
  d_ok : int;
  d_failed : int;
  d_rps : float;
  d_p50_ms : float;
  d_p95_ms : float;
  d_p99_ms : float;
  d_mismatches : int;
  d_restarts : int;
}

(* One (transport, conns) cell: a fresh daemon process (2 gateway
   workers), warmed, then [conns] concurrent connections in closed loop
   keeping [pipeline] requests outstanding each, every Ok reply checked
   byte-for-byte against the sequential in-process reference. *)
let daemon_cell ~transport ~conns ~pipeline ~service_s ~duration_s ~input
    ~expected =
  let dir = temp_store_dir "tabseg_daemon" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let listen =
    match transport with
    | "tcp" -> Dproto.Tcp ("127.0.0.1", 0)
    | _ -> Dproto.Unix_socket (Filename.concat dir "bench.sock")
  in
  let handle = Dm.spawn ~config:(daemon_config listen) () in
  Fun.protect ~finally:(fun () -> ignore (Dm.stop handle)) @@ fun () ->
  daemon_warm handle.Dm.address input;
  let config =
    {
      Dload.default_config with
      Dload.address = handle.Dm.address;
      connections = conns;
      mode = Dload.Closed_loop { pipeline };
      duration_s;
      sites = daemon_sites input;
      zipf_exponent = 1.1;
      fault = Tabseg_gateway.Wire.Sleep_s service_s;
      expected;
    }
  in
  match Dload.run config with
  | Error why -> failwith ("daemon bench: " ^ why)
  | Ok stats ->
    let restarts =
      int_of_float (daemon_stat handle.Dm.address "gateway.worker_restarts")
    in
    {
      d_transport = transport;
      d_conns = conns;
      d_pipeline = pipeline;
      d_offered = stats.Dload.offered;
      d_ok = stats.Dload.ok;
      d_failed = stats.Dload.failed;
      d_rps = stats.Dload.rps;
      d_p50_ms = stats.Dload.p50_ms;
      d_p95_ms = stats.Dload.p95_ms;
      d_p99_ms = stats.Dload.p99_ms;
      d_mismatches = stats.Dload.mismatches;
      d_restarts = restarts;
    }

type daemon_quota_point = {
  q_client : string;  (* "naive" | "retry" *)
  q_offered : int;
  q_ok : int;
  q_retried : int;
  q_recovered : int;
  q_abandoned : int;
  q_goodput : float;  (* ok over the shared fixed horizon *)
  q_mismatches : int;
}

(* The quota cell: a burst several times over the per-site admission
   quota, then a drain window long enough for the token buckets to
   refill. Both clients get the same offered load and the same time
   budget (arrival window + drain), so goodput-over-horizon isolates
   the one difference: honouring the retry-after hint recovers the
   rejected work, abandoning it does not. *)
let daemon_quota_cell ~retry ~quota_rps ~rate ~burst_s ~drain_s ~input
    ~expected =
  let dir = temp_store_dir "tabseg_daemon" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let listen = Dproto.Unix_socket (Filename.concat dir "bench.sock") in
  let handle =
    Dm.spawn ~config:(daemon_config ~site_quota:quota_rps listen) ()
  in
  Fun.protect ~finally:(fun () -> ignore (Dm.stop handle)) @@ fun () ->
  let config =
    {
      Dload.default_config with
      Dload.address = handle.Dm.address;
      connections = 4;
      mode = Dload.Open_loop { rate };
      duration_s = burst_s;
      drain_timeout_s = drain_s;
      sites = Array.sub (daemon_sites input) 0 4;
      retry_quota = retry;
      max_retries = 6;
      expected;
    }
  in
  match Dload.run config with
  | Error why -> failwith ("daemon quota bench: " ^ why)
  | Ok stats ->
    {
      q_client = (if retry then "retry" else "naive");
      q_offered = stats.Dload.offered;
      q_ok = stats.Dload.ok;
      q_retried = stats.Dload.retried;
      q_recovered = stats.Dload.recovered;
      q_abandoned = stats.Dload.abandoned;
      q_goodput = float_of_int stats.Dload.ok /. (burst_s +. drain_s);
      q_mismatches = stats.Dload.mismatches;
    }

let daemon_json ~procs ~service_s ~duration_s ~quota_rps ~rate ~burst_s
    ~drain_s points naive retry =
  let point_json p =
    Printf.sprintf
      "    {\"transport\": \"%s\", \"conns\": %d, \"pipeline\": %d, \
       \"offered\": %d, \"ok\": %d, \"failed\": %d, \"rps\": %.1f, \
       \"p50_ms\": %.2f, \"p95_ms\": %.2f, \"p99_ms\": %.2f, \
       \"mismatches\": %d, \"restarts\": %d}"
      p.d_transport p.d_conns p.d_pipeline p.d_offered p.d_ok p.d_failed
      p.d_rps p.d_p50_ms p.d_p95_ms p.d_p99_ms p.d_mismatches p.d_restarts
  in
  let quota_json q =
    Printf.sprintf
      "{\"offered\": %d, \"ok\": %d, \"retried\": %d, \"recovered\": %d, \
       \"abandoned\": %d, \"goodput_rps\": %.1f, \"mismatches\": %d}"
      q.q_offered q.q_ok q.q_retried q.q_recovered q.q_abandoned q.q_goodput
      q.q_mismatches
  in
  Printf.sprintf
    "{\n  \"bench\": \"daemon.serving\",\n  \"procs\": %d,\n  \
     \"service_ms\": %.1f,\n  \"duration_s\": %.2f,\n  \"sites\": %d,\n  \
     \"zipf_exponent\": 1.1,\n  \"sweep\": [\n%s\n  ],\n  \"quota\": {\n    \
     \"site_quota_rps\": %.1f,\n    \"rate\": %.1f,\n    \"burst_s\": \
     %.2f,\n    \"drain_s\": %.2f,\n    \"sites\": 4,\n    \"naive\": %s,\n    \
     \"retry\": %s,\n    \"recovery_ratio\": %.2f\n  }\n}\n"
    procs (service_s *. 1000.) duration_s
    (Array.length daemon_labels)
    (String.concat ",\n" (List.map point_json points))
    quota_rps rate burst_s drain_s (quota_json naive) (quota_json retry)
    (retry.q_goodput /. Float.max naive.q_goodput 1e-9)

(* The daemon benchmark: closed-loop connection sweep (1/8/16 conns,
   pipelined ×4) over a Unix socket plus one TCP cell, then the
   naive-vs-retry quota comparison. Spawns daemons (fork), so like the
   gateway benches it needs a process of its own. *)
let daemon_bench ?(json = false) () =
  section "Daemon: socket front door under concurrent connections";
  let service_s = 0.005 and duration_s = 1.5 in
  let quota_rps = 30. and rate = 600. and burst_s = 0.5 and drain_s = 4.0 in
  Printf.printf
    "(procs=2, service %.0f ms, closed loop ×%.1f s per cell, Zipf(1.1) \
     over %d site labels, replies checked against the sequential \
     reference)\n"
    (service_s *. 1000.) duration_s
    (Array.length daemon_labels);
  let input = overload_input () in
  let reference =
    List.hd
      (gateway_reference [ { Serve.Service.id = "ref"; site = "ref"; input } ])
  in
  let expected = daemon_expected reference in
  let points =
    List.map
      (fun (transport, conns, pipeline) ->
        daemon_cell ~transport ~conns ~pipeline ~service_s ~duration_s ~input
          ~expected)
      [ ("unix", 1, 4); ("unix", 8, 4); ("unix", 16, 4); ("tcp", 8, 4) ]
  in
  Printf.printf "%-5s %5s %8s %7s %5s %6s %8s %8s %8s %8s %3s\n" "trans"
    "conns" "pipeline" "offered" "ok" "fail" "rps" "p50ms" "p95ms" "p99ms"
    "ok?";
  List.iter
    (fun p ->
      Printf.printf "%-5s %5d %8d %7d %5d %6d %8.1f %8.2f %8.2f %8.2f %3s\n"
        p.d_transport p.d_conns p.d_pipeline p.d_offered p.d_ok p.d_failed
        p.d_rps p.d_p50_ms p.d_p95_ms p.d_p99_ms
        (if p.d_mismatches = 0 && p.d_restarts = 0 then "yes" else "NO"))
    points;
  Printf.printf
    "\nquota %.0f req/s/site × 4 sites, burst %.0f req/s for %.1f s, %.1f s \
     to drain:\n"
    quota_rps rate burst_s drain_s;
  let naive =
    daemon_quota_cell ~retry:false ~quota_rps ~rate ~burst_s ~drain_s ~input
      ~expected
  in
  let retry =
    daemon_quota_cell ~retry:true ~quota_rps ~rate ~burst_s ~drain_s ~input
      ~expected
  in
  List.iter
    (fun q ->
      Printf.printf
        "%-6s offered %4d  ok %4d  retried %4d  recovered %4d  abandoned \
         %4d  goodput %6.1f req/s\n"
        q.q_client q.q_offered q.q_ok q.q_retried q.q_recovered q.q_abandoned
        q.q_goodput)
    [ naive; retry ];
  Printf.printf "retry/naive goodput ratio: %.2f\n"
    (retry.q_goodput /. Float.max naive.q_goodput 1e-9);
  if json then begin
    let path = "BENCH_daemon.json" in
    let oc = open_out path in
    output_string oc
      (daemon_json ~procs:2 ~service_s ~duration_s ~quota_rps ~rate ~burst_s
         ~drain_s points naive retry);
    close_out oc;
    Printf.printf "\nwrote %s\n" path
  end;
  (points, naive, retry)

(* The per-PR daemon guard: one real daemon process, 8 concurrent
   pipelined connections for a second, every reply byte-identical to the
   in-process reference, no worker restarts, graceful SIGTERM stop. *)
let daemon_smoke () =
  section
    "Daemon smoke: 8 connections, byte-identical replies, clean drain";
  let input = overload_input () in
  let reference =
    List.hd
      (gateway_reference [ { Serve.Service.id = "ref"; site = "ref"; input } ])
  in
  let dir = temp_store_dir "tabseg_daemon" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let listen = Dproto.Unix_socket (Filename.concat dir "smoke.sock") in
  let handle = Dm.spawn ~config:(daemon_config listen) () in
  let ok = ref true in
  let fail fmt =
    Printf.ksprintf
      (fun message ->
        ok := false;
        Printf.printf "SMOKE FAILURE: %s\n" message)
      fmt
  in
  let stats, restarts =
    Fun.protect
      ~finally:(fun () ->
        match Dm.stop handle with
        | 0 -> ()
        | code -> fail "daemon exited %d after SIGTERM (want 0)" code)
    @@ fun () ->
    daemon_warm handle.Dm.address input;
    let config =
      {
        Dload.default_config with
        Dload.address = handle.Dm.address;
        connections = 8;
        mode = Dload.Closed_loop { pipeline = 4 };
        duration_s = 1.0;
        sites = daemon_sites input;
        zipf_exponent = 1.1;
        fault = Tabseg_gateway.Wire.Sleep_s 0.002;
        expected = daemon_expected reference;
      }
    in
    match Dload.run config with
    | Error why ->
      fail "loadgen failed: %s" why;
      (None, 0)
    | Ok stats ->
      ( Some stats,
        int_of_float
          (daemon_stat handle.Dm.address "gateway.worker_restarts") )
  in
  (match stats with
  | None -> ()
  | Some stats ->
    if stats.Dload.ok <= 0 then fail "no request completed";
    if stats.Dload.failed > 0 then
      fail "%d request(s) failed under plain load" stats.Dload.failed;
    if stats.Dload.mismatches > 0 then
      fail "%d reply(ies) diverged from the sequential reference"
        stats.Dload.mismatches;
    if restarts > 0 then fail "%d worker restart(s) under load" restarts;
    if !ok then
      Printf.printf
        "smoke ok: %d/%d replies over 8 pipelined connections, \
         byte-identical, %d restarts, clean drain\n"
        stats.Dload.ok stats.Dload.offered restarts);
  if not !ok then exit 1

(* ------------------------------------------------------------------ *)
(* Wrapper bootstrap (extension): one segmented page wraps the site     *)
(* ------------------------------------------------------------------ *)

let wrapper_bootstrap () =
  section
    "Wrapper bootstrap (extension): induce a wrapper from page 1's \
     segmentation, extract page 2 without detail pages";
  Printf.printf "%-22s %-10s %-26s %-26s\n" "Site" "wrapper"
    "page 2 via wrapper" "page 2 via full pipeline";
  List.iter
    (fun site ->
      let generated = Sites.generate site in
      let list_pages, detail_pages =
        Sites.segmentation_input generated ~page_index:0
      in
      let prepared =
        Tabseg.Pipeline.prepare { Tabseg.Pipeline.list_pages; detail_pages }
      in
      let segmentation = Tabseg.Csp_segmenter.segment prepared in
      let page2 = List.nth generated.Sites.pages 1 in
      let wrapper_cell, wrapper_score =
        match
          Tabseg_wrapper.Row_wrapper.induce
            ~page:prepared.Tabseg.Pipeline.page ~segmentation
        with
        | None -> ("none", "-")
        | Some wrapper ->
          let rows =
            Tabseg_wrapper.Row_wrapper.apply wrapper page2.Sites.list_html
          in
          ( Printf.sprintf "%s" wrapper.Tabseg_wrapper.Row_wrapper.marker,
            Format.asprintf "%a" Metrics.pp_prf
              (Scorer.score ~truth:page2.Sites.truth
                 (Tabseg_wrapper.Row_wrapper.to_segmentation rows)) )
      in
      let full_score =
        let result =
          segment_page ~method_:Tabseg.Api.Csp generated ~page_index:1
        in
        Format.asprintf "%a" Metrics.pp_prf
          (Scorer.score ~truth:page2.Sites.truth
             result.Tabseg.Api.segmentation)
      in
      Printf.printf "%-22s %-10s %-26s %-26s\n" site.Sites.name wrapper_cell
        wrapper_score full_score)
    Sites.all;
  Printf.printf
    "\nOne detail-page-assisted segmentation buys a wrapper that extracts \
     every further page of the site for free.\n"

(* ------------------------------------------------------------------ *)
(* Timing (Bechamel)                                                   *)
(* ------------------------------------------------------------------ *)

let timing () =
  section "Timing: \"exceedingly fast, a few seconds in all cases\"";
  let open Bechamel in
  let generated = Sites.generate (Sites.find "AlleghenyCounty") in
  let list_pages, detail_pages =
    Sites.segmentation_input generated ~page_index:0
  in
  let input = { Tabseg.Pipeline.list_pages; detail_pages } in
  let prepared = Tabseg.Pipeline.prepare input in
  let tests =
    [
      Test.make ~name:"pipeline (tokenize+template+observe)"
        (Staged.stage (fun () -> ignore (Tabseg.Pipeline.prepare input)));
      Test.make ~name:"csp segmentation"
        (Staged.stage (fun () ->
             ignore (Tabseg.Csp_segmenter.segment prepared)));
      Test.make ~name:"probabilistic segmentation (period)"
        (Staged.stage (fun () ->
             ignore (Tabseg.Prob_segmenter.segment prepared)));
      Test.make ~name:"probabilistic segmentation (base)"
        (Staged.stage (fun () ->
             ignore
               (Tabseg.Prob_segmenter.segment
                  ~config:Tabseg.Prob_segmenter.base_config prepared)));
    ]
  in
  let grouped = Test.make_grouped ~name:"tabseg" tests in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 1.0) () in
  let raw_results = Benchmark.all cfg instances grouped in
  let results =
    List.map
      (fun instance ->
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          instance raw_results)
      instances
  in
  List.iter
    (fun by_test ->
      Hashtbl.iter
        (fun test_name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ nanoseconds ] ->
            Printf.printf "%-52s %12.3f ms/run\n" test_name
              (nanoseconds /. 1e6)
          | Some _ | None ->
            Printf.printf "%-52s (no estimate)\n" test_name)
        by_test)
    results

(* ------------------------------------------------------------------ *)
(* Corpus: sampled site families at scale through Serve.Service        *)
(* ------------------------------------------------------------------ *)

module Corpus_family = Tabseg_corpus.Family
module Corpus_harness = Tabseg_corpus.Harness

(* Row counts stay log-uniform up to 10^5 (the sampler's full range);
   only the first [siblings + 1] list pages of a huge site are ever
   materialized, so total row count shapes pagination, not bench cost. *)
let env_int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some value -> (
    match int_of_string_opt value with
    | Some n when n > 0 -> n
    | Some _ | None ->
      Printf.eprintf "invalid %s: %s\n" name value;
      exit 1)

(* Per-family micro-F reference from the committed BENCH_corpus.json
   (1000 sites, seed 7001). [corpus_bench] re-checks these at full
   corpus scale with a tight margin; [corpus_smoke]'s 24-site sample
   gets a wider one (tiny per-family populations are noisier).
   Regenerate with `make bench-corpus` and update from the JSON when
   the pipeline's accuracy profile legitimately moves. *)
let family_micro_f_reference =
  [
    ("blocks/flat", 0.9718);
    ("blocks/nested", 0.9656);
    ("freeform/flat", 0.9678);
    ("freeform/nested", 0.9647);
    ("grid/flat", 0.9747);
    ("grid/nested", 0.9838);
    ("numbered-blocks/flat", 0.9722);
    ("numbered-blocks/nested", 0.9755);
    ("numbered-grid/flat", 0.9662);
    ("numbered-grid/nested", 0.9609);
  ]

(* Calls [fail family micro floor] for every sampled family whose
   micro-F sits below its reference minus [epsilon]; families absent
   from the sample are skipped. *)
let check_family_floors ~epsilon ~fail (report : Corpus_harness.report) =
  List.iter
    (fun (fs : Corpus_harness.family_summary) ->
      match
        List.assoc_opt fs.Corpus_harness.fs_family family_micro_f_reference
      with
      | None -> ()
      | Some benched ->
        let floor = benched -. epsilon in
        let micro = Metrics.f_measure fs.Corpus_harness.fs_counts in
        if micro < floor then fail fs.Corpus_harness.fs_family micro floor)
    report.Corpus_harness.families

let corpus_bench ?(json = false) ?sites ?(seed = 7001) () =
  let sites =
    match sites with
    | Some n -> n
    | None -> env_int "TABSEG_CORPUS_SITES" 1000
  in
  let jobs = env_int "TABSEG_CORPUS_JOBS" 2 in
  section
    (Printf.sprintf "Corpus: %d sampled sites through Serve.Service" sites);
  let max_rows_per_page = env_int "TABSEG_CORPUS_MAX_PAGE" 12 in
  let params =
    { Corpus_family.default_params with sites; seed; max_rows_per_page }
  in
  let specs = Corpus_family.sample params in
  let siblings = env_int "TABSEG_CORPUS_SIBLINGS" 2 in
  let config = { Corpus_harness.default_config with jobs; siblings } in
  let report = Corpus_harness.evaluate ~config specs in
  print_string (Corpus_harness.render_report report);
  (* The per-family floors only mean something at the scale and seed
     they were benched at; a down-scaled TABSEG_CORPUS_SITES run skips
     them rather than failing on sampling noise. *)
  if sites >= 1000 && seed = 7001 then begin
    let failures = ref 0 in
    check_family_floors ~epsilon:0.01
      ~fail:(fun family micro floor ->
        incr failures;
        Printf.printf
          "FLOOR FAILURE: family %-22s micro-F %.4f below floor %.4f\n"
          family micro floor)
      report;
    if !failures > 0 then exit 1;
    Printf.printf "per-family micro-F floors hold (reference - 0.01)\n"
  end
  else
    Printf.printf
      "per-family floors skipped (%d sites, seed %d; floors assume 1000 \
       sites, seed 7001)\n"
      sites seed;
  if json then begin
    let path = "BENCH_corpus.json" in
    let oc = open_out path in
    output_string oc (Corpus_harness.report_json ~params ~config report);
    close_out oc;
    Printf.printf "wrote %s\n" path
  end;
  report

(* The per-PR corpus guard: a small fixed-seed corpus must evaluate
   without service errors, hold an F1 floor, and produce the same
   accuracy digest twice in a row (the determinism contract the corpus
   sampler promises). *)
let corpus_smoke () =
  section "Corpus smoke: fixed seed, F1 floor, deterministic digest";
  let ok = ref true in
  let fail fmt =
    Printf.ksprintf
      (fun message ->
        ok := false;
        Printf.printf "SMOKE FAILURE: %s\n" message)
      fmt
  in
  let params = { Corpus_family.default_params with sites = 24; seed = 11 } in
  let specs = Corpus_family.sample params in
  let config = { Corpus_harness.default_config with jobs = 1 } in
  let report = Corpus_harness.evaluate ~config specs in
  let again = Corpus_harness.evaluate ~config specs in
  if report.Corpus_harness.sites <> params.Corpus_family.sites then
    fail "expected %d sites, evaluated %d" params.Corpus_family.sites
      report.Corpus_harness.sites;
  if report.Corpus_harness.errors <> 0 then
    fail "%d service errors on a clean corpus" report.Corpus_harness.errors;
  let f1_p50 = report.Corpus_harness.f1.Corpus_harness.d_p50 in
  if f1_p50 < 0.6 then fail "median F1 %.3f below the 0.6 floor" f1_p50;
  (* A 24-site sample puts only 2-3 sites in each family, so the smoke
     margin is wide — one mis-segmented row swings a tiny family by
     several points. It still catches a family falling off a cliff; the
     tight (-0.01) enforcement runs at 1000 sites in [corpus_bench]. *)
  check_family_floors ~epsilon:0.10
    ~fail:(fun family micro floor ->
      fail "family %s micro-F %.4f below smoke floor %.4f" family micro floor)
    report;
  if report.Corpus_harness.digest <> again.Corpus_harness.digest then
    fail "accuracy digest not deterministic: %s vs %s"
      report.Corpus_harness.digest again.Corpus_harness.digest;
  if not !ok then exit 1;
  Printf.printf
    "smoke ok: %d sites, median F1 %.3f, digest %s reproduced\n"
    report.Corpus_harness.sites f1_p50 report.Corpus_harness.digest

(* ------------------------------------------------------------------ *)
(* Streaming: time-to-first-record vs batch on a cold 10^5-row site    *)
(* ------------------------------------------------------------------ *)

module Stream_engine = Tabseg_stream.Engine
module Stream_source = Tabseg_stream.Source
module Stream_runner = Tabseg_stream.Runner
module Stream_frame = Tabseg_stream.Frame

(* One seeded corpus family pinned to 10^5 rows (TABSEG_STREAM_ROWS to
   shrink locally): the site batch segmentation must crawl end to end
   before emitting anything, which is exactly the latency streaming is
   built to beat. *)
let stream_bench_spec () =
  let params =
    {
      Corpus_family.default_params with
      Corpus_family.sites = 1;
      seed = 47;
      max_rows = 4_000;
      max_rows_per_page = 10;
    }
  in
  {
    (List.hd (Corpus_family.sample params)) with
    Corpus_family.sp_name = "stream-bench";
    sp_rows = env_int "TABSEG_STREAM_ROWS" 100_000;
    sp_rows_per_page = 25;
  }

(* Lazy crawl: pages are generated only as the engine pulls them, so
   time-to-first-record includes exactly the crawl prefix streaming
   actually needs. *)
let stream_lazy_source spec ~units =
  let next = Corpus_family.page_source ~max_pages:units spec in
  let queue = Queue.create () in
  fun () ->
    if not (Queue.is_empty queue) then Some (Queue.pop queue)
    else
      match next () with
      | None -> None
      | Some page ->
        Queue.add
          (Stream_source.List_page
             { html = page.Corpus_family.list_html; segment = true })
          queue;
        List.iter
          (fun html -> Queue.add (Stream_source.Detail_page html) queue)
          page.Corpus_family.detail_htmls;
        Some (Queue.pop queue)

let stream_drain source =
  let rec go acc =
    match source () with None -> List.rev acc | Some p -> go (p :: acc)
  in
  go []

let stream_percentile sorted q =
  if Array.length sorted = 0 then 0.
  else
    let rank =
      int_of_float (ceil (q *. float_of_int (Array.length sorted))) - 1
    in
    sorted.(max 0 (min rank (Array.length sorted - 1)))

(* One cold repetition: batch = crawl everything, then segment; stream
   = same site through the engine off the lazy crawl, clocking the
   first record and sampling live words at each unit close. *)
let stream_rep ~config ~units spec =
  let batch_started = Unix.gettimeofday () in
  let pages = stream_drain (stream_lazy_source spec ~units) in
  let reference = Stream_runner.batch_reference ~config pages in
  let batch_s = Unix.gettimeofday () -. batch_started in
  Gc.compact ();
  let baseline = (Gc.stat ()).Gc.live_words in
  let live_hwm = ref 0 in
  let ttfr = ref None in
  let stream_started = Unix.gettimeofday () in
  let folded =
    Stream_runner.fold ~config
      ~on_event:(function
        | Stream_frame.Record _ when !ttfr = None ->
          ttfr := Some (Unix.gettimeofday () -. stream_started)
        | Stream_frame.Unit_done _ ->
          live_hwm :=
            max !live_hwm ((Gc.stat ()).Gc.live_words - baseline)
        | _ -> ())
      (stream_lazy_source spec ~units)
  in
  let stream_s = Unix.gettimeofday () -. stream_started in
  let identical =
    List.length folded.Stream_runner.outcomes = List.length reference
    && List.for_all2
         (fun streamed batch ->
           Stream_runner.outcome_digest streamed
           = Stream_runner.outcome_digest batch)
         folded.Stream_runner.outcomes reference
  in
  ( batch_s,
    stream_s,
    Option.value ~default:batch_s !ttfr,
    folded.Stream_runner.summary.Stream_frame.live_tokens_hwm,
    !live_hwm,
    identical )

let stream_bench ?(json = false) () =
  let spec = stream_bench_spec () in
  let units = env_int "TABSEG_STREAM_UNITS" 10 in
  let reps = env_int "TABSEG_STREAM_REPS" 5 in
  section
    (Printf.sprintf
       "Stream: TTFR vs batch, cold %d-row site (%d units, %d reps)"
       spec.Corpus_family.sp_rows units reps);
  let config =
    { Stream_engine.default_config with Stream_engine.head_window = 3 }
  in
  let cells = List.init reps (fun _ -> stream_rep ~config ~units spec) in
  let column f = Array.of_list (List.map f cells) in
  let sorted f =
    let c = column f in
    Array.sort compare c;
    c
  in
  let batch = sorted (fun (b, _, _, _, _, _) -> b) in
  let stream = sorted (fun (_, s, _, _, _, _) -> s) in
  let ttfr = sorted (fun (_, _, t, _, _, _) -> t) in
  let tokens_hwm =
    List.fold_left max 0 (List.map (fun (_, _, _, k, _, _) -> k) cells)
  in
  let words_hwm =
    List.fold_left max 0 (List.map (fun (_, _, _, _, w, _) -> w) cells)
  in
  let identical = List.for_all (fun (_, _, _, _, _, i) -> i) cells in
  let ms x = x *. 1e3 in
  let batch_p50 = stream_percentile batch 0.5 in
  let ttfr_p50 = stream_percentile ttfr 0.5 in
  let ratio = if batch_p50 > 0. then ttfr_p50 /. batch_p50 else 1. in
  Printf.printf "%-28s %10s %10s %10s\n" "" "p50 ms" "p95 ms" "max ms";
  List.iter
    (fun (label, s) ->
      Printf.printf "%-28s %10.1f %10.1f %10.1f\n" label
        (ms (stream_percentile s 0.5))
        (ms (stream_percentile s 0.95))
        (ms s.(Array.length s - 1)))
    [
      ("batch total (crawl+segment)", batch);
      ("stream total", stream);
      ("time to first record", ttfr);
    ];
  Printf.printf "ttfr p50 / batch p50:    %.3f\n" ratio;
  Printf.printf "live tokens hwm:         %d\n" tokens_hwm;
  Printf.printf "live words hwm:          %d\n" words_hwm;
  Printf.printf "byte-identical to batch: %b\n" identical;
  if not identical then begin
    Printf.printf "STREAM FAILURE: stream outcomes differ from batch\n";
    exit 1
  end;
  if ratio >= 0.25 then begin
    Printf.printf
      "STREAM FAILURE: ttfr p50 is %.1f%% of batch total (need < 25%%)\n"
      (100. *. ratio);
    exit 1
  end;
  if json then begin
    let path = "BENCH_stream.json" in
    let buffer = Buffer.create 1024 in
    let add fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
    let dist label s =
      add
        "  \"%s_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"max\": %.3f},\n"
        label
        (ms (stream_percentile s 0.5))
        (ms (stream_percentile s 0.95))
        (ms s.(Array.length s - 1))
    in
    add "{\n";
    add "  \"bench\": \"stream\",\n";
    add "  \"rows\": %d,\n" spec.Corpus_family.sp_rows;
    add "  \"units\": %d,\n" units;
    add "  \"reps\": %d,\n" reps;
    dist "batch_total" batch;
    dist "stream_total" stream;
    dist "ttfr" ttfr;
    add "  \"ttfr_over_batch_p50\": %.4f,\n" ratio;
    add "  \"ttfr_under_quarter_batch\": %b,\n" (ratio < 0.25);
    add "  \"live_tokens_hwm\": %d,\n" tokens_hwm;
    add "  \"live_words_hwm\": %d,\n" words_hwm;
    add "  \"live_words_bounded\": %b,\n" (words_hwm < 16_000_000);
    add "  \"byte_identical\": %b\n" identical;
    add "}\n";
    let oc = open_out path in
    Buffer.output_buffer oc buffer;
    close_out oc;
    Printf.printf "wrote %s\n" path
  end

(* The per-PR streaming guard: every built-in site and a 200-site
   seeded corpus sample must stream byte-identically to the batch
   segmentation under both methods — streaming is a delivery schedule,
   never a different computation. *)
let stream_smoke () =
  section "Stream smoke: byte-identity, 12 built-in sites + 200 corpus sites";
  let ok = ref true in
  let fail fmt =
    Printf.ksprintf
      (fun message ->
        ok := false;
        Printf.printf "SMOKE FAILURE: %s\n" message)
      fmt
  in
  let methods = [ Tabseg.Api.Csp; Tabseg.Api.Probabilistic ] in
  let check label method_ input =
    let config =
      { Stream_engine.default_config with Stream_engine.method_ }
    in
    let records = ref 0 in
    let outcome, _summary =
      Stream_runner.stream_input ~config
        ~on_record:(fun _ -> incr records)
        input
    in
    let stream_digest = Stream_runner.outcome_digest outcome in
    let batch_digest =
      Stream_runner.outcome_digest
        (Tabseg.Api.segment_result ~method_ input)
    in
    if stream_digest <> batch_digest then
      fail "%s (%s): stream digest %s, batch digest %s" label
        (Tabseg.Api.method_name method_)
        stream_digest batch_digest;
    (match outcome with
    | Ok result ->
      let expected =
        List.length result.Tabseg.Api.segmentation.Tabseg.Segmentation.records
      in
      if !records <> expected then
        fail "%s (%s): streamed %d records, batch has %d" label
          (Tabseg.Api.method_name method_)
          !records expected
    | Error _ -> ())
  in
  let builtin = ref 0 in
  List.iter
    (fun site ->
      incr builtin;
      let generated = Sites.generate site in
      let list_pages, detail_pages =
        Sites.segmentation_input generated ~page_index:0
      in
      let input = { Tabseg.Pipeline.list_pages; detail_pages } in
      List.iter (fun m -> check site.Sites.name m input) methods)
    Sites.all;
  let specs =
    Corpus_family.sample
      {
        Corpus_family.default_params with
        Corpus_family.sites = 200;
        seed = 401;
        max_rows = 600;
        max_rows_per_page = 10;
      }
  in
  List.iter
    (fun spec ->
      let generated = Corpus_family.generate ~max_pages:3 spec in
      let list_pages, detail_pages =
        Corpus_family.segmentation_input generated ~page_index:0
          ~max_siblings:2
      in
      let input = { Tabseg.Pipeline.list_pages; detail_pages } in
      List.iter
        (fun m -> check spec.Corpus_family.sp_name m input)
        methods)
    specs;
  if not !ok then exit 1;
  Printf.printf
    "smoke ok: %d built-in + %d corpus sites byte-identical under both \
     methods\n"
    !builtin (List.length specs)

(* ------------------------------------------------------------------ *)
(* Lint runtime guard                                                  *)
(* ------------------------------------------------------------------ *)

(* The interprocedural dataflow pass (TS008-TS012) runs a summary
   fixpoint over every compilation unit; an accidental widening there
   could turn `make check` from sub-second to minutes without any test
   noticing. This guard runs both analyzer passes over the full repo
   (lib/ bin/ bench/, same roots as `make lint`), fails on any
   unsuppressed finding, and enforces a hard wall-clock budget. *)
let lint_budget_s = 10.0

let lint_smoke ~json () =
  section "Lint smoke: TS001-TS012 over the full repo, runtime budget";
  let ok = ref true in
  let fail fmt =
    Printf.ksprintf
      (fun message ->
        ok := false;
        Printf.printf "SMOKE FAILURE: %s\n" message)
      fmt
  in
  let module Lint = Tabseg_analyze.Lint in
  let module Flow = Tabseg_analyze.Flow in
  let module Taint = Tabseg_analyze.Taint in
  let rec ml_files_under path =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list |> List.sort compare
      |> List.concat_map (fun entry ->
             if
               String.length entry > 0 && (entry.[0] = '.' || entry.[0] = '_')
             then []
             else ml_files_under (Filename.concat path entry))
    else if Filename.check_suffix path ".ml" then [ path ]
    else []
  in
  let roots = List.filter Sys.file_exists [ "lib"; "bin"; "bench" ] in
  if roots = [] then fail "no source roots found (run from the repo root)";
  let files = List.concat_map ml_files_under roots in
  let started = Unix.gettimeofday () in
  let syntactic = Lint.lint_files files in
  let syntactic_s = Unix.gettimeofday () -. started in
  let dataflow_started = Unix.gettimeofday () in
  let dataflow = Taint.analyze (List.map Flow.scan_file files) in
  let dataflow_s = Unix.gettimeofday () -. dataflow_started in
  let elapsed = Unix.gettimeofday () -. started in
  let findings = syntactic @ dataflow in
  List.iter (fun f -> Printf.printf "%s\n" (Lint.render f)) findings;
  if findings <> [] then
    fail "%d unsuppressed finding(s) over %d files" (List.length findings)
      (List.length files);
  if elapsed > lint_budget_s then
    fail "full-repo lint took %.2fs, budget is %.0fs" elapsed lint_budget_s;
  if json then begin
    let path = "BENCH_lint.json" in
    let oc = open_out path in
    Printf.fprintf oc
      "{\n\
      \  \"files\": %d,\n\
      \  \"findings\": %d,\n\
      \  \"syntactic_s\": %.4f,\n\
      \  \"dataflow_s\": %.4f,\n\
      \  \"total_s\": %.4f,\n\
      \  \"budget_s\": %.1f\n\
       }\n"
      (List.length files) (List.length findings) syntactic_s dataflow_s
      elapsed lint_budget_s;
    close_out oc;
    Printf.printf "\nwrote %s\n" path
  end;
  if not !ok then exit 1;
  Printf.printf
    "smoke ok: %d files clean (TS001-TS012) in %.2fs (syntactic %.2fs, \
     dataflow %.2fs; budget %.0fs)\n"
    (List.length files) elapsed syntactic_s dataflow_s lint_budget_s

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let flags, targets = List.partition (fun a -> String.length a > 0 && a.[0] = '-') args in
  let json = List.mem "--json" flags in
  (match List.filter (fun f -> f <> "--json") flags with
  | [] -> ()
  | unknown ->
    Printf.eprintf "unknown flag(s): %s\n" (String.concat " " unknown);
    exit 1);
  let targets =
    match targets with
    | _ :: _ -> targets
    | [] ->
      [ "table1"; "table2"; "table3"; "table4"; "clean17"; "figure1";
        "figure23";
        "ablation"; "ablation-csp"; "vision"; "sweep"; "faults"; "wrapper";
        "baseline"; "throughput"; "store"; "timing" ]
  in
  let table4_cache = ref None in
  List.iter
    (fun target ->
      match target with
      | "table1" -> table1 ()
      | "table2" -> table2 ()
      | "table3" -> table3 ()
      | "table4" -> table4_cache := Some (table4 ())
      | "clean17" -> clean17 ?precomputed:!table4_cache ()
      | "figure1" -> figure1 ()
      | "figure23" -> figure23 ()
      | "ablation" -> ablation ()
      | "ablation-csp" -> ablation_csp ()
      | "vision" -> vision ()
      | "sweep" -> sweep ()
      | "faults" -> fault_sweep ()
      | "faults-smoke" -> fault_sweep ~smoke:true ()
      | "throughput" -> ignore (throughput ~json ())
      | "serve-smoke" -> serve_smoke ()
      | "store" -> store_bench ~json ()
      | "store-smoke" -> store_smoke ()
      | "gateway" -> ignore (gateway_bench ~json ())
      | "gateway-smoke" -> gateway_smoke ()
      | "overload" -> ignore (overload_bench ~json ())
      | "overload-smoke" -> overload_smoke ()
      | "daemon" -> ignore (daemon_bench ~json ())
      | "daemon-smoke" -> daemon_smoke ()
      | "corpus" -> ignore (corpus_bench ~json ())
      | "corpus-smoke" -> corpus_smoke ()
      | "stream" -> stream_bench ~json ()
      | "stream-smoke" -> stream_smoke ()
      | "lint-smoke" -> lint_smoke ~json ()
      | "wrapper" -> wrapper_bootstrap ()
      | "baseline" -> baseline ()
      | "timing" -> timing ()
      | other ->
        Printf.eprintf "unknown bench target: %s\n" other;
        exit 1)
    targets
