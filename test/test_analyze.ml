(* The invariant gate: every lint rule fires on a seeded fixture with
   the right file:line, [@tabseg.allow] suppresses exactly the rule it
   names (and only with a justification), the cross-unit fork rule
   follows module references between units and through the Tabseg_<lib>
   naming convention, and the dynamic Lockcheck companion reports an
   A->B / B->A acquisition cycle across two domains. *)

module Lint = Tabseg_analyze.Lint
module Flow = Tabseg_analyze.Flow
module Taint = Tabseg_analyze.Taint
module Lockcheck = Tabseg_lockcheck.Lockcheck

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Scan a set of (path, source) fixtures and return all findings. *)
let lint fixtures =
  Lint.analyze
    (List.map (fun (path, source) -> Lint.scan ~path source) fixtures)

let findings_of rule findings =
  List.filter (fun f -> f.Lint.rule = rule) findings

let the_finding rule findings =
  match findings_of rule findings with
  | [ f ] -> f
  | fs ->
    Alcotest.failf "expected exactly one %s finding, got %d"
      (Lint.rule_slug rule) (List.length fs)

(* ------------------------- TS001 fork-after-domain ------------------- *)

let spawner = "let go () = ignore (Domain.spawn (fun () -> ()))\n"

let forker =
  "let boot () = A.go ()\n\
   let f () = Unix.fork ()\n"

let test_fork_fires () =
  let fs = lint [ ("a.ml", spawner); ("b.ml", forker) ] in
  let f = the_finding Lint.Fork_after_domain fs in
  check_string "file" "b.ml" f.Lint.file;
  check_int "line" 2 f.Lint.line

let test_fork_needs_reachability () =
  (* No reference from the forking unit to the spawning one: clean. *)
  let fs =
    lint [ ("a.ml", spawner); ("b.ml", "let f () = Unix.fork ()\n") ]
  in
  check_int "no finding" 0 (List.length (findings_of Lint.Fork_after_domain fs))

let test_fork_resolves_library_prefix () =
  (* gateway -> Tabseg_serve.Pool across the lib/<x> <-> Tabseg_<x>
     convention, the shape of the real PR-4 incident. *)
  let fs =
    lint
      [
        ("lib/serve/pool.ml", "let start f = Domain.spawn f\n");
        ( "lib/gateway/master.ml",
          "let boot f = Tabseg_serve.Pool.start f\n\
           let f () = Unix.fork ()\n" );
      ]
  in
  let f = the_finding Lint.Fork_after_domain fs in
  check_string "file" "lib/gateway/master.ml" f.Lint.file;
  check_int "line" 2 f.Lint.line

let test_fork_suppressed () =
  let fs =
    lint
      [
        ("a.ml", spawner);
        ( "b.ml",
          "let boot () = A.go ()\n\
           let f () = Unix.fork ()\n\
           [@@tabseg.allow \"fork-after-domain\" \"forks before any spawn\"]\n"
        );
      ]
  in
  check_int "suppressed" 0 (List.length fs)

(* --------------------------- TS002 raw-marshal ----------------------- *)

let marshal_src = "let noise () = ()\nlet f x = Marshal.to_string x []\n"

let test_marshal_fires () =
  let f = the_finding Lint.Raw_marshal (lint [ ("lib/x.ml", marshal_src) ]) in
  check_int "line" 2 f.Lint.line;
  check_bool "mentions framing" true
    (String.length f.Lint.message > 0)

let test_marshal_blessed_in_wire_and_codec () =
  check_int "wire" 0
    (List.length (lint [ ("lib/gateway/wire.ml", marshal_src) ]));
  check_int "codec" 0
    (List.length (lint [ ("lib/store/codec.ml", marshal_src) ]))

let test_marshal_suppressed () =
  let fs =
    lint
      [
        ( "lib/x.ml",
          "let f x = (Marshal.to_string x [])\n\
           [@@tabseg.allow \"raw-marshal\" \"checksummed by the caller\"]\n" );
      ]
  in
  check_int "suppressed" 0 (List.length fs)

(* ---------------------------- TS003 bare-mutex ----------------------- *)

let test_mutex_fires () =
  let fs = lint [ ("lib/x.ml", "let f m =\n  Mutex.lock m\n") ] in
  let f = the_finding Lint.Bare_mutex fs in
  check_int "line" 2 f.Lint.line

let test_mutex_blessed_in_lockcheck () =
  check_int "lockcheck" 0
    (List.length
       (lint [ ("lib/analyze/lockcheck/lockcheck.ml", "let f m = Mutex.lock m\n") ]))

let test_mutex_suppressed_by_its_rule_only () =
  (* An allow for a different rule must not suppress bare-mutex. *)
  let wrong =
    lint
      [
        ( "lib/x.ml",
          "let f m = (Mutex.lock m) [@tabseg.allow \"raw-marshal\" \"nope\"]\n"
        );
      ]
  in
  check_int "wrong-rule allow keeps the finding" 1
    (List.length (findings_of Lint.Bare_mutex wrong));
  let right =
    lint
      [
        ( "lib/x.ml",
          "let f m = (Mutex.lock m) [@tabseg.allow \"bare-mutex\" \"fixture\"]\n"
        );
      ]
  in
  check_int "matching allow suppresses" 0 (List.length right)

(* ------------------------ TS004 blocking-io-select ------------------- *)

let select_io_src =
  "let tick fd = ignore (Unix.select [ fd ] [] [] 0.1)\n\
   let pump fd b = ignore (Unix.read fd b 0 1)\n"

let test_select_io_fires () =
  let f =
    the_finding Lint.Blocking_io_select (lint [ ("lib/g.ml", select_io_src) ])
  in
  check_int "line" 2 f.Lint.line

let test_io_without_select_is_fine () =
  let fs = lint [ ("lib/g.ml", "let pump fd b = Unix.read fd b 0 1\n") ] in
  check_int "no select loop, no finding" 0 (List.length fs)

let test_select_io_blessed_in_wire () =
  check_int "wire implements the wrappers" 0
    (List.length (lint [ ("lib/gateway/wire.ml", select_io_src) ]))

let test_select_io_suppressed () =
  let fs =
    lint
      [
        ( "lib/g.ml",
          "let tick fd = ignore (Unix.select [ fd ] [] [] 0.1)\n\
           let nap () = (Unix.sleepf 0.1)\n\
           [@@tabseg.allow \"blocking-io-select\" \"runs outside the loop\"]\n"
        );
      ]
  in
  check_int "suppressed" 0 (List.length fs)

(* ---------------------------- TS005 print-in-lib --------------------- *)

let test_print_fires_in_lib_only () =
  let src = "let debug () = ()\nlet f () = Printf.printf \"x\"\n" in
  let f = the_finding Lint.Print_in_lib (lint [ ("lib/x.ml", src) ]) in
  check_int "line" 2 f.Lint.line;
  check_int "CLIs may print" 0 (List.length (lint [ ("bin/x.ml", src) ]));
  check_int "print_endline too" 1
    (List.length (lint [ ("lib/x.ml", "let f () = print_endline \"x\"\n") ]))

let test_print_suppressed_floating () =
  (* A floating [@@@tabseg.allow] covers the rest of the file. *)
  let fs =
    lint
      [
        ( "lib/x.ml",
          "[@@@tabseg.allow \"print-in-lib\" \"progress bars are its job\"]\n\
           let f () = print_endline \"x\"\n" );
      ]
  in
  check_int "suppressed" 0 (List.length fs)

(* ------------------------ TS006 global-mutable-state ----------------- *)

let test_global_state_fires () =
  let fs =
    lint
      [
        ( "lib/serve/glob.ml",
          "let table = Hashtbl.create 8\nlet hits = ref 0\n" );
      ]
  in
  let found = findings_of Lint.Global_mutable_state fs in
  check_int "both globals flagged" 2 (List.length found);
  check_int "first line" 1 (List.nth found 0).Lint.line;
  check_int "second line" 2 (List.nth found 1).Lint.line

let test_global_state_scoped_and_local_ok () =
  check_int "outside serve/store: fine" 0
    (List.length (lint [ ("lib/html/glob.ml", "let t = Hashtbl.create 8\n") ]));
  check_int "locals are fine" 0
    (List.length
       (lint [ ("lib/serve/glob.ml", "let f () = let c = ref 0 in !c\n") ]))

let test_global_state_guard_annotation () =
  let fs =
    lint
      [
        ( "lib/store/glob.ml",
          "let registry = Hashtbl.create 8\n\
           [@@tabseg.allow \"global-mutable-state\" \"guarded by \
           registry_mutex\"]\n" );
      ]
  in
  check_int "guard annotation suppresses" 0 (List.length fs)

(* --------------------- TS007 allow-needs-justification --------------- *)

let test_allow_without_justification () =
  let fs =
    lint
      [ ("lib/x.ml", "let f m = (Mutex.lock m) [@tabseg.allow \"bare-mutex\"]\n") ]
  in
  (* The naked allow is itself a finding AND does not suppress. *)
  check_int "TS007 fired" 1
    (List.length (findings_of Lint.Allow_needs_justification fs));
  check_int "TS003 not suppressed" 1
    (List.length (findings_of Lint.Bare_mutex fs))

let test_allow_unknown_rule () =
  let fs =
    lint
      [
        ( "lib/x.ml",
          "let f () = () [@tabseg.allow \"no-such-rule\" \"misspelt\"]\n" );
      ]
  in
  check_int "unknown rule is a finding" 1
    (List.length (findings_of Lint.Allow_needs_justification fs))

(* ------------------------------- plumbing ---------------------------- *)

let test_parse_error_is_a_finding () =
  let fs = lint [ ("lib/x.ml", "let let = in\n") ] in
  check_int "parse error reported" 1
    (List.length (findings_of Lint.Parse_error fs))

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

let test_render_carries_rule_id () =
  let f = the_finding Lint.Bare_mutex (lint [ ("lib/x.ml", "let f m = Mutex.lock m\n") ]) in
  let rendered = Lint.render f in
  check_bool "has TS003" true (contains rendered "TS003");
  check_bool "has slug" true (contains rendered "bare-mutex")

(* ----------------- TS008-TS012 interprocedural dataflow -------------- *)

(* Scan fixtures with the Flow substrate and run the Taint pass. *)
let taint fixtures =
  Taint.analyze
    (List.map (fun (path, source) -> Flow.scan ~path source) fixtures)

(* A network-read helper: fills [buf] from the fd, the canonical
   untrusted source for these fixtures. *)
let read_src =
  "let read_all fd =\n\
  \  let buf = Bytes.create 512 in\n\
  \  let n = Unix.read fd buf 0 512 in\n\
  \  Bytes.sub_string buf 0 n\n"

let test_taint_marshal_fires () =
  let src =
    read_src ^ "let f fd =\n  let s = read_all fd in\n  (Marshal.from_string s 0 : int)\n"
  in
  let fs = taint [ ("lib/daemon/x.ml", src) ] in
  let f = the_finding Lint.Tainted_marshal fs in
  check_string "file" "lib/daemon/x.ml" f.Lint.file;
  check_int "line" 7 f.Lint.line;
  check_bool "chain starts at the source" true
    (contains (String.concat " -> " f.Lint.chain) "Unix.read")

let test_taint_marshal_blessed_codecs_clean () =
  let src =
    read_src ^ "let f fd =\n  let s = read_all fd in\n  (Marshal.from_string s 0 : int)\n"
  in
  check_int "wire is blessed" 0
    (List.length
       (findings_of Lint.Tainted_marshal
          (taint [ ("lib/gateway/wire.ml", src) ])));
  check_int "daemon protocol is blessed" 0
    (List.length
       (findings_of Lint.Tainted_marshal
          (taint [ ("lib/daemon/protocol.ml", src) ])))

let test_taint_marshal_cross_unit () =
  (* Source in one unit, sink in another, resolved through the
     Tabseg_<lib> naming convention: the finding lands on the sink's
     file:line with the call step in the chain. *)
  let fs =
    taint
      [
        ("lib/daemon/net.ml", read_src);
        ( "lib/gateway/h.ml",
          "let g fd =\n\
          \  let s = Tabseg_daemon.Net.read_all fd in\n\
          \  (Marshal.from_string s 0 : int)\n" );
      ]
  in
  let f = the_finding Lint.Tainted_marshal fs in
  check_string "file" "lib/gateway/h.ml" f.Lint.file;
  check_int "line" 3 f.Lint.line;
  check_bool "chain crosses the call" true
    (contains (String.concat " -> " f.Lint.chain) "read_all")

let test_taint_marshal_suppressed () =
  let src =
    read_src
    ^ "let f fd =\n\
      \  let s = read_all fd in\n\
      \  ((Marshal.from_string s 0 : int)\n\
      \  [@tabseg.allow \"taint-marshal\" \"fixture: verified upstream\"])\n"
  in
  check_int "suppressed" 0
    (List.length
       (findings_of Lint.Tainted_marshal (taint [ ("lib/daemon/x.ml", src) ])))

let test_unbounded_alloc_fires () =
  let src =
    read_src
    ^ "let f fd =\n\
      \  let s = read_all fd in\n\
      \  let len = int_of_string s in\n\
      \  Bytes.create len\n"
  in
  let f =
    the_finding Lint.Unbounded_alloc (taint [ ("lib/daemon/x.ml", src) ])
  in
  check_int "line" 8 f.Lint.line;
  check_bool "chain present" true (f.Lint.chain <> [])

let test_unbounded_alloc_bound_check_sanitizes () =
  let src =
    read_src
    ^ "let max_frame = 4096\n\
       let f fd =\n\
      \  let s = read_all fd in\n\
      \  let len = int_of_string s in\n\
      \  if len > max_frame then invalid_arg \"too big\";\n\
      \  Bytes.create len\n"
  in
  check_int "dominating bound check: clean" 0
    (List.length
       (findings_of Lint.Unbounded_alloc (taint [ ("lib/daemon/x.ml", src) ])));
  let min_src =
    read_src
    ^ "let max_frame = 4096\n\
       let f fd =\n\
      \  let s = read_all fd in\n\
      \  Bytes.create (min (int_of_string s) max_frame)\n"
  in
  check_int "min with max_*: clean" 0
    (List.length
       (findings_of Lint.Unbounded_alloc
          (taint [ ("lib/daemon/x.ml", min_src) ])))

let test_tainted_sink_format_and_path () =
  let fmt_src =
    read_src ^ "let f fd =\n  ignore (Printf.sprintf (read_all fd))\n"
  in
  let f =
    the_finding Lint.Tainted_sink (taint [ ("lib/daemon/x.ml", fmt_src) ])
  in
  check_int "format sink line" 6 f.Lint.line;
  let path_src = read_src ^ "let f fd =\n  Sys.remove (read_all fd)\n" in
  let p =
    the_finding Lint.Tainted_sink (taint [ ("lib/daemon/x.ml", path_src) ])
  in
  check_int "path sink line" 6 p.Lint.line;
  check_bool "names the sink" true (contains p.Lint.message "Sys.remove")

let test_tainted_sink_suppressed () =
  let src =
    read_src
    ^ "let f fd =\n\
      \  (Sys.remove (read_all fd)\n\
      \  [@tabseg.allow \"tainted-string-sink\" \"fixture: trusted peer\"])\n"
  in
  check_int "suppressed" 0
    (List.length
       (findings_of Lint.Tainted_sink (taint [ ("lib/daemon/x.ml", src) ])))

let test_fd_leak_no_release () =
  let src =
    "let f path =\n\
    \  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in\n\
    \  ()\n"
  in
  let f = the_finding Lint.Fd_leak (taint [ ("lib/daemon/x.ml", src) ]) in
  check_int "reported at the acquire" 2 f.Lint.line

let test_fd_leak_exception_edge () =
  (* fstat can raise with the fd live and unprotected: the exception
     edge leaks even though the happy path closes. *)
  let src =
    "let f path =\n\
    \  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in\n\
    \  let st = Unix.fstat fd in\n\
    \  Unix.close fd;\n\
    \  st\n"
  in
  let f = the_finding Lint.Fd_leak (taint [ ("lib/daemon/x.ml", src) ]) in
  check_int "reported at the acquire" 2 f.Lint.line;
  check_bool "chain names the raiser" true
    (contains (String.concat " -> " f.Lint.chain) "Unix.fstat")

let test_fd_leak_fun_protect_clean () =
  let src =
    "let f path =\n\
    \  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in\n\
    \  Fun.protect\n\
    \    ~finally:(fun () -> Unix.close fd)\n\
    \    (fun () -> Unix.fstat fd)\n"
  in
  check_int "Fun.protect covers the exception edge" 0
    (List.length (findings_of Lint.Fd_leak (taint [ ("lib/daemon/x.ml", src) ])))

let test_fd_leak_handler_reraise_clean () =
  let src =
    "let f path =\n\
    \  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in\n\
    \  let st =\n\
    \    try Unix.fstat fd\n\
    \    with e ->\n\
    \      Unix.close fd;\n\
    \      raise e\n\
    \  in\n\
    \  Unix.close fd;\n\
    \  st\n"
  in
  let fs = taint [ ("lib/daemon/x.ml", src) ] in
  check_int "close-and-reraise handler: clean" 0
    (List.length (findings_of Lint.Fd_leak fs));
  check_int "no double-close either" 0
    (List.length (findings_of Lint.Double_close fs))

let test_fd_leak_ownership_transfer_clean () =
  (* Returning the fd, or handing it to a non-Unix callee, transfers
     ownership: the caller is now responsible. *)
  let ret_src =
    "let f path = Unix.openfile path [ Unix.O_RDONLY ] 0\n"
  in
  check_int "returned fd: clean" 0
    (List.length
       (findings_of Lint.Fd_leak (taint [ ("lib/daemon/x.ml", ret_src) ])))

let test_fd_leak_suppressed () =
  let src =
    "let f path =\n\
    \  let fd =\n\
    \    (Unix.openfile path [ Unix.O_RDONLY ] 0\n\
    \    [@tabseg.allow \"fd-leak\" \"fixture: closed by the registry\"])\n\
    \  in\n\
    \  ignore (Unix.getpid ());\n\
    \  ()\n"
  in
  check_int "suppressed" 0
    (List.length (findings_of Lint.Fd_leak (taint [ ("lib/daemon/x.ml", src) ])))

let test_double_close_fires () =
  let src =
    "let f fd =\n\
    \  Unix.close fd;\n\
    \  Unix.close fd\n"
  in
  (* close of a *parameter* is tracked through the release summary; a
     locally acquired fd closed twice must fire on its own too *)
  let local =
    "let f path =\n\
    \  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in\n\
    \  Unix.close fd;\n\
    \  Unix.close fd\n"
  in
  ignore src;
  let f = the_finding Lint.Double_close (taint [ ("lib/daemon/x.ml", local) ]) in
  check_int "second close is the finding" 4 f.Lint.line;
  check_bool "chain shows both closes" true
    (contains (String.concat " -> " f.Lint.chain) "first release")

let test_double_close_branches_clean () =
  let src =
    "let f path cond =\n\
    \  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in\n\
    \  if cond then Unix.close fd else Unix.close fd\n"
  in
  check_int "one close per path: clean" 0
    (List.length
       (findings_of Lint.Double_close (taint [ ("lib/daemon/x.ml", src) ])))

(* ------------------------------ Lockcheck ---------------------------- *)

let ab_dance a b =
  (* Domain 1 takes A then B; domain 2 takes B then A. Sequential joins:
     the order hazard is recorded without any real contention. *)
  Domain.join
    (Domain.spawn (fun () ->
         Lockcheck.protect a (fun () -> Lockcheck.protect b (fun () -> ()))));
  Domain.join
    (Domain.spawn (fun () ->
         Lockcheck.protect b (fun () -> Lockcheck.protect a (fun () -> ()))))

let test_lockcheck_detects_cycle () =
  Lockcheck.enable ();
  let a = Lockcheck.create ~name:"A" () in
  let b = Lockcheck.create ~name:"B" () in
  ab_dance a b;
  let vs = Lockcheck.violations () in
  Lockcheck.disable ();
  (* This is the test that MUST fail if detection is disabled. *)
  check_int "one cycle" 1 (List.length vs);
  let cycle = (List.hd vs).Lockcheck.cycle in
  check_bool "names A" true (List.mem "A" cycle);
  check_bool "names B" true (List.mem "B" cycle);
  check_string "closes on its first lock" (List.hd cycle)
    (List.nth cycle (List.length cycle - 1))

let test_lockcheck_disabled_records_nothing () =
  Lockcheck.reset ();
  Lockcheck.disable ();
  let a = Lockcheck.create ~name:"A" () in
  let b = Lockcheck.create ~name:"B" () in
  ab_dance a b;
  check_int "nothing recorded when disabled" 0
    (List.length (Lockcheck.violations ()))

let test_lockcheck_consistent_order_is_clean () =
  Lockcheck.enable ();
  let a = Lockcheck.create ~name:"A" () in
  let b = Lockcheck.create ~name:"B" () in
  Domain.join
    (Domain.spawn (fun () ->
         Lockcheck.protect a (fun () -> Lockcheck.protect b (fun () -> ()))));
  Lockcheck.protect a (fun () -> Lockcheck.protect b (fun () -> ()));
  let vs = Lockcheck.violations () in
  Lockcheck.disable ();
  check_int "same order everywhere: clean" 0 (List.length vs)

let test_lockcheck_protect_releases_on_exception () =
  let a = Lockcheck.create ~name:"A" () in
  (try Lockcheck.protect a (fun () -> raise Exit) with Exit -> ());
  (* If the exception leaked the lock, this would deadlock (or raise
     Sys_error on the same-domain reacquire). *)
  check_int "reacquired fine" 42 (Lockcheck.protect a (fun () -> 42))

let () =
  Alcotest.run "analyze"
    [
      ( "fork-after-domain",
        [
          Alcotest.test_case "fires across unit references" `Quick
            test_fork_fires;
          Alcotest.test_case "needs reachability" `Quick
            test_fork_needs_reachability;
          Alcotest.test_case "resolves Tabseg_<lib> prefixes" `Quick
            test_fork_resolves_library_prefix;
          Alcotest.test_case "suppressed with justification" `Quick
            test_fork_suppressed;
        ] );
      ( "raw-marshal",
        [
          Alcotest.test_case "fires outside the codecs" `Quick
            test_marshal_fires;
          Alcotest.test_case "Wire and Codec are blessed" `Quick
            test_marshal_blessed_in_wire_and_codec;
          Alcotest.test_case "suppressed with justification" `Quick
            test_marshal_suppressed;
        ] );
      ( "bare-mutex",
        [
          Alcotest.test_case "fires on raw lock" `Quick test_mutex_fires;
          Alcotest.test_case "Lockcheck itself is blessed" `Quick
            test_mutex_blessed_in_lockcheck;
          Alcotest.test_case "allow suppresses exactly its rule" `Quick
            test_mutex_suppressed_by_its_rule_only;
        ] );
      ( "blocking-io-select",
        [
          Alcotest.test_case "fires in select-loop modules" `Quick
            test_select_io_fires;
          Alcotest.test_case "plain blocking IO elsewhere is fine" `Quick
            test_io_without_select_is_fine;
          Alcotest.test_case "Wire is blessed" `Quick
            test_select_io_blessed_in_wire;
          Alcotest.test_case "suppressed with justification" `Quick
            test_select_io_suppressed;
        ] );
      ( "print-in-lib",
        [
          Alcotest.test_case "fires under lib/ only" `Quick
            test_print_fires_in_lib_only;
          Alcotest.test_case "floating allow covers the file" `Quick
            test_print_suppressed_floating;
        ] );
      ( "global-mutable-state",
        [
          Alcotest.test_case "fires on module-level ref/Hashtbl" `Quick
            test_global_state_fires;
          Alcotest.test_case "scoped to serve/store; locals fine" `Quick
            test_global_state_scoped_and_local_ok;
          Alcotest.test_case "guard annotation suppresses" `Quick
            test_global_state_guard_annotation;
        ] );
      ( "allow-discipline",
        [
          Alcotest.test_case "justification is mandatory" `Quick
            test_allow_without_justification;
          Alcotest.test_case "unknown rule name is a finding" `Quick
            test_allow_unknown_rule;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "parse errors are findings" `Quick
            test_parse_error_is_a_finding;
          Alcotest.test_case "render carries the rule id" `Quick
            test_render_carries_rule_id;
        ] );
      ( "taint-marshal",
        [
          Alcotest.test_case "network read into Marshal fires" `Quick
            test_taint_marshal_fires;
          Alcotest.test_case "blessed codec modules are clean" `Quick
            test_taint_marshal_blessed_codecs_clean;
          Alcotest.test_case "chains across compilation units" `Quick
            test_taint_marshal_cross_unit;
          Alcotest.test_case "suppressed with justification" `Quick
            test_taint_marshal_suppressed;
        ] );
      ( "unbounded-alloc",
        [
          Alcotest.test_case "untrusted length reaches Bytes.create" `Quick
            test_unbounded_alloc_fires;
          Alcotest.test_case "bound check or min-cap sanitizes" `Quick
            test_unbounded_alloc_bound_check_sanitizes;
        ] );
      ( "tainted-string-sink",
        [
          Alcotest.test_case "format and path sinks fire" `Quick
            test_tainted_sink_format_and_path;
          Alcotest.test_case "suppressed with justification" `Quick
            test_tainted_sink_suppressed;
        ] );
      ( "fd-leak",
        [
          Alcotest.test_case "acquired fd never released" `Quick
            test_fd_leak_no_release;
          Alcotest.test_case "exception edge before the close leaks" `Quick
            test_fd_leak_exception_edge;
          Alcotest.test_case "Fun.protect finally is clean" `Quick
            test_fd_leak_fun_protect_clean;
          Alcotest.test_case "close-and-reraise handler is clean" `Quick
            test_fd_leak_handler_reraise_clean;
          Alcotest.test_case "returning the fd transfers ownership" `Quick
            test_fd_leak_ownership_transfer_clean;
          Alcotest.test_case "suppressed with justification" `Quick
            test_fd_leak_suppressed;
        ] );
      ( "double-close",
        [
          Alcotest.test_case "sequential double close fires" `Quick
            test_double_close_fires;
          Alcotest.test_case "exclusive branches are clean" `Quick
            test_double_close_branches_clean;
        ] );
      ( "lockcheck",
        [
          Alcotest.test_case "A->B/B->A across two domains is a cycle" `Quick
            test_lockcheck_detects_cycle;
          Alcotest.test_case "disabled: records nothing" `Quick
            test_lockcheck_disabled_records_nothing;
          Alcotest.test_case "consistent order is clean" `Quick
            test_lockcheck_consistent_order_is_clean;
          Alcotest.test_case "protect releases on exception" `Quick
            test_lockcheck_protect_releases_on_exception;
        ] );
    ]
