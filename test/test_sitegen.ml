open Tabseg_sitegen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------ Prng ------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  let seq rand = List.init 20 (fun _ -> Prng.int rand 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (seq a) (seq b)

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let seq rand = List.init 20 (fun _ -> Prng.int rand 1_000_000) in
  check_bool "different seeds differ" true (seq a <> seq b)

let test_prng_bounds () =
  let rand = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.int rand 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let test_prng_rejects_bad_bound () =
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Prng.int: non-positive bound") (fun () ->
      ignore (Prng.int (Prng.create 1) 0))

let test_prng_pick_and_shuffle () =
  let rand = Prng.create 4 in
  check_bool "pick member" true (List.mem (Prng.pick rand [ 1; 2; 3 ]) [ 1; 2; 3 ]);
  let shuffled = Prng.shuffle rand [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check (list int)) "permutation" [ 1; 2; 3; 4; 5 ]
    (List.sort compare shuffled)

let test_prng_float_bounds () =
  let rand = Prng.create 11 in
  for _ = 1 to 1000 do
    let v = Prng.float rand 3.5 in
    check_bool "in [0, 3.5)" true (v >= 0. && v < 3.5)
  done

let test_prng_log_uniform () =
  let rand = Prng.create 12 in
  let small = ref 0 in
  for _ = 1 to 2000 do
    let v = Prng.log_uniform_int rand ~min:10 ~max:100_000 in
    check_bool "in [10, 100000]" true (v >= 10 && v <= 100_000);
    if v < 1000 then incr small
  done;
  (* log-uniform: [10, 1000) covers half the four decades, so roughly
     half the draws land there — a uniform draw would put ~1% there *)
  check_bool "equal mass per decade" true (!small > 700 && !small < 1300)

let test_prng_zipf_cdf_shape () =
  let cdf = Prng.zipf_cdf ~n:50 ~exponent:1.1 in
  check_int "one entry per rank" 50 (Array.length cdf);
  Array.iteri
    (fun i c ->
      if i > 0 then
        check_bool "monotone non-decreasing" true (c >= cdf.(i - 1)))
    cdf;
  check_bool "last entry is exactly 1" true (cdf.(49) = 1.);
  check_bool "rank 0 carries the most mass" true
    (cdf.(0) > cdf.(1) -. cdf.(0))

let test_prng_zipf_index () =
  let cdf = Prng.zipf_cdf ~n:10 ~exponent:1.5 in
  check_int "u=0 maps to rank 0" 0 (Prng.zipf_index cdf 0.);
  check_int "u just under 1 maps to the last rank" 9
    (Prng.zipf_index cdf 0.999999);
  let rand = Prng.create 13 in
  let hits = Array.make 10 0 in
  for _ = 1 to 5000 do
    let rank = Prng.zipf_index cdf (Prng.float rand 1.) in
    hits.(rank) <- hits.(rank) + 1
  done;
  check_bool "rank 0 is the most popular" true
    (Array.for_all (fun n -> n <= hits.(0)) hits);
  check_bool "the tail is still reachable" true (hits.(9) > 0)

let test_prng_split_independent () =
  let rand = Prng.create 5 in
  let child = Prng.split rand in
  let a = List.init 10 (fun _ -> Prng.int rand 100) in
  let b = List.init 10 (fun _ -> Prng.int child 100) in
  check_bool "streams differ" true (a <> b)

let prop_prng_chance_extremes =
  QCheck.Test.make ~name:"chance 0 never fires, chance 1 always fires"
    ~count:100 QCheck.small_nat (fun seed ->
      let rand = Prng.create seed in
      (not (Prng.chance rand 0.)) && Prng.chance rand 0.9999999)

(* ------------------------------ Data ------------------------------ *)

let test_data_shapes () =
  let rand = Prng.create 11 in
  let pools = Data.make_pools rand in
  let phone = Data.phone rand pools in
  check_bool "phone shape" true
    (String.length phone = 14 && phone.[0] = '(' && phone.[4] = ')');
  let money = Data.money rand ~min:1_000 ~max:999_999 in
  check_bool "money starts with dollar" true (money.[0] = '$');
  let date = Data.date rand in
  check_int "date length" 10 (String.length date);
  check_bool "date slashes" true (date.[2] = '/' && date.[5] = '/')

let test_data_pools_narrow () =
  let rand = Prng.create 12 in
  let pools = Data.make_pools rand in
  let cities = List.init 200 (fun _ -> Data.city rand pools) in
  check_bool "city pool has at most 3 values" true
    (List.length (List.sort_uniq compare cities) <= 3)

let test_data_authors () =
  let rand = Prng.create 13 in
  let pools = Data.make_pools rand in
  check_int "three authors" 3 (List.length (Data.authors rand pools 3))

(* ----------------------------- Render ----------------------------- *)

let chrome =
  {
    Render.site_title = "Test Site";
    summary = "Displaying 1-2 of 2 records.";
    promos = [ "promo line" ];
    footer = [ "Copyright 2004" ];
  }

let rows =
  [
    {
      Render.cells =
        [ { Render.text = "Alice A."; gray = false };
          { Render.text = "12 Elm St"; gray = false } ];
      link = Some "d0.html";
      link_text = "More Info";
      enumerator = Some "1.";
    };
    {
      Render.cells =
        [ { Render.text = "Bob B."; gray = false };
          { Render.text = "street address not available"; gray = true } ];
      link = Some "d1.html";
      link_text = "More Info";
      enumerator = Some "2.";
    };
  ]

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    i + nl <= hl
    && (String.sub haystack i nl = needle || scan (i + 1))
  in
  scan 0

let test_render_grid () =
  let html = Render.render_list Render.Grid ~columns:[ "Name"; "Addr" ] chrome rows in
  check_bool "table present" true (contains html "<table");
  check_bool "header label" true (contains html "<th>Name</th>");
  check_bool "row data" true (contains html "Alice A.");
  check_bool "link" true (contains html {|href="d0.html"|});
  check_bool "no enumerator in plain grid" false (contains html ">1.<")

let test_render_numbered_grid () =
  let html =
    Render.render_list Render.Numbered_grid ~columns:[ "Name"; "Addr" ] chrome
      rows
  in
  check_bool "enumerator rendered" true (contains html "<td>1.</td>")

let test_render_freeform_gray () =
  (* Three cells so the tilde-before-last separator appears. *)
  let three_cell_rows =
    List.map
      (fun row ->
        { row with
          Render.cells =
            row.Render.cells @ [ { Render.text = "(555) 111-2222"; gray = false } ] })
      rows
  in
  let html =
    Render.render_list Render.Freeform ~columns:[] chrome three_cell_rows
  in
  check_bool "gray font for missing address" true
    (contains html {|<font color="gray">street address not available</font>|});
  check_bool "bold lead" true (contains html "<b>Alice A.</b>");
  check_bool "tilde separator" true (contains html " ~ ")

let test_render_detail_mismatch () =
  Alcotest.check_raises "labels/values mismatch"
    (Invalid_argument "Render.render_detail: labels/values length mismatch")
    (fun () ->
      ignore
        (Render.render_detail ~chrome ~labels:[ "A" ] ~values:[] ~extra:[]))

let test_render_escaping () =
  let html =
    Render.render_detail ~chrome ~labels:[ "Name" ]
      ~values:[ "Smith & Sons <Ltd>" ] ~extra:[]
  in
  check_bool "escaped" true (contains html "Smith &amp; Sons &lt;Ltd&gt;")

let test_row_truth_excludes_presentation () =
  Alcotest.(check (list string))
    "cell texts only"
    [ "Alice A."; "12 Elm St" ]
    (Render.row_truth (List.hd rows))

(* ------------------------------ Sites ------------------------------ *)

let test_twelve_sites () = check_int "twelve sites" 12 (List.length Sites.all)

let test_find () =
  check_bool "case-insensitive" true
    ((Sites.find "superpages").Sites.name = "SuperPages")

let test_generation_deterministic () =
  let site = Sites.find "ButlerCounty" in
  let a = Sites.generate site and b = Sites.generate site in
  check_bool "same html" true
    ((List.hd a.Sites.pages).Sites.list_html
    = (List.hd b.Sites.pages).Sites.list_html)

(* A hardcoded digest of every rendered byte of the twelve sites: the
   cross-process half of the determinism contract. In-process equality
   (above) would still pass if generation silently keyed off global
   state; this fails the moment any seed, pool, or rendering decision
   stops being a pure function of the site spec. *)
let test_generation_golden_digest () =
  let buffer = Buffer.create (1 lsl 16) in
  List.iter
    (fun site ->
      let generated = Sites.generate site in
      List.iter
        (fun page ->
          Buffer.add_string buffer page.Sites.list_html;
          List.iter (Buffer.add_string buffer) page.Sites.detail_htmls;
          List.iter
            (fun row -> Buffer.add_string buffer (String.concat "\t" row))
            page.Sites.truth)
        generated.Sites.pages)
    Sites.all;
  Alcotest.(check string)
    "all twelve sites render byte-identically across process runs"
    "6497f9df9231ac56cb8af1272c85c39f"
    (Digest.to_hex (Digest.string (Buffer.contents buffer)))

let test_generation_seed_sensitivity () =
  let site = Sites.find "ButlerCounty" in
  let reseeded = { site with Sites.seed = site.Sites.seed + 1 } in
  let a = Sites.generate site and b = Sites.generate reseeded in
  check_bool "different seeds render different pages" true
    ((List.hd a.Sites.pages).Sites.list_html
    <> (List.hd b.Sites.pages).Sites.list_html)

let test_record_counts_match_paper () =
  List.iter
    (fun (name, counts) ->
      let site = Sites.find name in
      Alcotest.(check (list int)) name counts site.Sites.records_per_page;
      let generated = Sites.generate site in
      List.iter2
        (fun expected page ->
          check_int (name ^ " truth rows") expected
            (List.length page.Sites.truth);
          check_int (name ^ " detail pages") expected
            (List.length page.Sites.detail_htmls))
        counts generated.Sites.pages)
    [ ("AmazonBooks", [ 10; 10 ]); ("AlleghenyCounty", [ 20; 20 ]);
      ("ButlerCounty", [ 15; 12 ]); ("LeeCounty", [ 16; 5 ]);
      ("MichiganCorrections", [ 7; 16 ]); ("Canada411", [ 25; 5 ]);
      ("SuperPages", [ 3; 15 ]) ]

let test_truth_values_on_list_page () =
  (* Every ground-truth cell must be visible on the rendered list page
     (matching the word stream the tokenizer sees). *)
  List.iter
    (fun site ->
      let generated = Sites.generate site in
      List.iter
        (fun page ->
          let words =
            Tabseg_token.Tokenizer.visible_text
              (Tabseg_token.Tokenizer.tokenize page.Sites.list_html)
          in
          List.iter
            (fun row ->
              List.iter
                (fun cell ->
                  let cell_words =
                    Tabseg_token.Tokenizer.visible_text
                      (Tabseg_token.Tokenizer.tokenize cell)
                  in
                  check_bool
                    (Printf.sprintf "%s: %S on page" site.Sites.name cell)
                    true
                    (contains words cell_words))
                row)
            page.Sites.truth)
        generated.Sites.pages)
    Sites.all

let test_michigan_drift () =
  let generated = Sites.generate (Sites.find "MichiganCorrections") in
  let page2 = List.nth generated.Sites.pages 1 in
  let parole_rows =
    List.filter (fun row -> List.mem "Parole" row) page2.Sites.truth
  in
  check_bool "at least two Parole rows on page 2" true
    (List.length parole_rows >= 2);
  (* No detail page of the drifting rows contains "Parole" as a field. *)
  let planted =
    List.filter
      (fun html ->
        contains html "Parole board meets monthly")
      page2.Sites.detail_htmls
  in
  check_int "exactly one planted page" 1 (List.length planted);
  (* Page 1 must carry no Parole rows at all. *)
  let page1 = List.hd generated.Sites.pages in
  check_int "no Parole on page 1" 0
    (List.length
       (List.filter (fun row -> List.mem "Parole" row) page1.Sites.truth))

let test_canada411_missing_city () =
  let generated = Sites.generate (Sites.find "Canada411") in
  let page2 = List.nth generated.Sites.pages 1 in
  (* All five records share the unique town... *)
  List.iter
    (fun row ->
      check_bool "shared town" true (List.mem "Port Renfrew, BC" row))
    page2.Sites.truth;
  (* ...and exactly one detail page omits it. *)
  let withouts =
    List.filter
      (fun html -> not (contains html "Port Renfrew, BC"))
      page2.Sites.detail_htmls
  in
  check_int "one detail page lacks the town" 1 (List.length withouts)

let test_superpages_disjunction () =
  let generated = Sites.generate (Sites.find "SuperPages") in
  let page2 = List.nth generated.Sites.pages 1 in
  check_bool "gray alternative present" true
    (contains page2.Sites.list_html
       {|<font color="gray">street address not available</font>|})

let test_segmentation_input_shape () =
  let generated = Sites.generate (Sites.find "OhioCorrections") in
  let list_pages, details = Sites.segmentation_input generated ~page_index:1 in
  check_int "two list pages" 2 (List.length list_pages);
  check_int "details of page 2" 10 (List.length details);
  check_bool "target first" true
    (List.hd list_pages = (List.nth generated.Sites.pages 1).Sites.list_html)

let () =
  Alcotest.run "tabseg_sitegen"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick
            test_prng_seed_sensitivity;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "bad bound" `Quick test_prng_rejects_bad_bound;
          Alcotest.test_case "pick and shuffle" `Quick
            test_prng_pick_and_shuffle;
          Alcotest.test_case "split independent" `Quick
            test_prng_split_independent;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "log-uniform" `Quick test_prng_log_uniform;
          Alcotest.test_case "zipf cdf shape" `Quick test_prng_zipf_cdf_shape;
          Alcotest.test_case "zipf index" `Quick test_prng_zipf_index;
          QCheck_alcotest.to_alcotest prop_prng_chance_extremes;
        ] );
      ( "data",
        [
          Alcotest.test_case "value shapes" `Quick test_data_shapes;
          Alcotest.test_case "narrow pools" `Quick test_data_pools_narrow;
          Alcotest.test_case "authors" `Quick test_data_authors;
        ] );
      ( "render",
        [
          Alcotest.test_case "grid" `Quick test_render_grid;
          Alcotest.test_case "numbered grid" `Quick test_render_numbered_grid;
          Alcotest.test_case "freeform gray" `Quick test_render_freeform_gray;
          Alcotest.test_case "detail mismatch" `Quick
            test_render_detail_mismatch;
          Alcotest.test_case "escaping" `Quick test_render_escaping;
          Alcotest.test_case "row truth" `Quick
            test_row_truth_excludes_presentation;
        ] );
      ( "sites",
        [
          Alcotest.test_case "twelve" `Quick test_twelve_sites;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "deterministic" `Quick
            test_generation_deterministic;
          Alcotest.test_case "golden digest (cross-process)" `Quick
            test_generation_golden_digest;
          Alcotest.test_case "seed sensitivity" `Quick
            test_generation_seed_sensitivity;
          Alcotest.test_case "record counts match paper" `Quick
            test_record_counts_match_paper;
          Alcotest.test_case "truth visible on list pages" `Slow
            test_truth_values_on_list_page;
          Alcotest.test_case "michigan drift" `Quick test_michigan_drift;
          Alcotest.test_case "canada411 missing city" `Quick
            test_canada411_missing_city;
          Alcotest.test_case "superpages disjunction" `Quick
            test_superpages_disjunction;
          Alcotest.test_case "segmentation input" `Quick
            test_segmentation_input_shape;
        ] );
    ]
