(* The daemon front door: address parsing, handshake gates (auth token,
   frame version), idle-timeout close, strict per-connection reply
   ordering under latency skew (byte-identical to the in-process
   reference), the per-connection inflight window as typed in-order
   refusals, quota rejections crossing the wire with their retry-after
   hint, a client disconnecting mid-request without wedging the
   gateway, SIGTERM drain semantics, a TCP listener, and the load
   generator driving all of it. Every daemon here is a real separate
   process (Daemon.spawn). *)

open Tabseg_serve
open Tabseg_daemon
module Gw = Tabseg_gateway.Gateway
module GWire = Tabseg_gateway.Wire

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let small_input =
  lazy
    (let open Tabseg_sitegen in
     let generated = Sites.generate (Sites.find "VerticalPages") in
     let list_pages, detail_pages =
       Sites.segmentation_input generated ~page_index:0
     in
     { Tabseg.Pipeline.list_pages; detail_pages })

(* The daemon's service runs the default (probabilistic) method; the
   reference must match it. *)
let reference =
  lazy
    (match
       Tabseg.Api.segment_result ~method_:Tabseg.Api.Probabilistic
         (Lazy.force small_input)
     with
    | Ok result ->
      Format.asprintf "%a" Tabseg.Segmentation.pp
        result.Tabseg.Api.segmentation
    | Error error -> "ERROR: " ^ Tabseg.Api.input_error_message error)

let render_reply (reply : Protocol.reply) =
  match reply.Protocol.outcome with
  | Ok result ->
    Format.asprintf "%a" Tabseg.Segmentation.pp result.Tabseg.Api.segmentation
  | Error error -> "ERROR: " ^ Gw.error_message error

let request id =
  { Service.id; site = "daemon-test"; input = Lazy.force small_input }

let sample_record =
  lazy
    (match
       Tabseg.Api.segment_result ~method_:Tabseg.Api.Probabilistic
         (Lazy.force small_input)
     with
    | Ok result ->
      List.hd result.Tabseg.Api.segmentation.Tabseg.Segmentation.records
    | Error _ -> failwith "sample segmentation failed")

let temp_sock =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tabseg_dm_%d_%d.sock" (Unix.getpid ()) !counter)

let daemon_config ?(procs = 1) ?auth_token ?idle_timeout_s ?(inflight = 32)
    ?site_quota () =
  {
    Daemon.default_config with
    Daemon.listen = Protocol.Unix_socket (temp_sock ());
    auth_token;
    idle_timeout_s;
    max_conn_inflight = inflight;
    gateway =
      { Gw.default_config with Gw.procs; site_quota_rps = site_quota };
  }

let with_daemon config f =
  let handle = Daemon.spawn ~config () in
  Fun.protect ~finally:(fun () -> ignore (Daemon.stop handle)) (fun () ->
      f handle)

let connect_exn ?client ?auth_token address =
  match Client.connect ?client ?auth_token address with
  | Ok c -> c
  | Error e -> Alcotest.fail (Client.connect_error_message e)

let submit_exn client ?fault req =
  match Client.submit client ?fault req with
  | Ok reply -> reply
  | Error e -> Alcotest.fail (Client.error_message e)

(* ---------------------------- protocol ------------------------------ *)

let test_address_parsing () =
  let roundtrip address =
    match Protocol.address_of_string (Protocol.address_to_string address) with
    | Ok back -> check_bool "address roundtrips" true (back = address)
    | Error e -> Alcotest.fail e
  in
  roundtrip (Protocol.Tcp ("127.0.0.1", 8080));
  roundtrip (Protocol.Tcp ("::1", 9));
  roundtrip (Protocol.Unix_socket "/tmp/some/tabseg.sock");
  (match Protocol.address_of_string "tcp:localhost:7070" with
  | Ok (Protocol.Tcp ("localhost", 7070)) -> ()
  | _ -> Alcotest.fail "tcp:localhost:7070 should parse");
  List.iter
    (fun bad ->
      check_bool
        (Printf.sprintf "%S is rejected" bad)
        true
        (Result.is_error (Protocol.address_of_string bad)))
    [ ""; "nope"; "ftp:x:1"; "tcp:"; "tcp:host"; "tcp:host:notaport";
      "tcp::8080"; "tcp:host:70000"; "unix:" ]

let test_message_roundtrip () =
  let messages =
    [
      Protocol.Hello { client = "t"; token = Some "secret" };
      Protocol.Welcome { server_pid = 1; procs = 2; max_conn_inflight = 32 };
      Protocol.Rejected { reason = "bad auth token" };
      Protocol.Submit
        { seq = 3; request = request "r3"; fault = GWire.Sleep_s 0.5 };
      Protocol.Submit_stream
        { seq = 4; request = request "r4"; fault = GWire.No_fault };
      Protocol.Reply_record
        { seq = 4; index = 0; record = Lazy.force sample_record };
      Protocol.Stats_request;
      Protocol.Stats [ ("daemon.requests", 12.) ];
      Protocol.Goodbye;
    ]
  in
  List.iter
    (fun message ->
      match GWire.decode_frame (Protocol.encode message) with
      | `Frame (payload, consumed) ->
        check_int "whole frame consumed"
          (String.length (Protocol.encode message))
          consumed;
        (match Protocol.decode_payload payload with
        | Ok back ->
          check_bool "message roundtrips" true (back = message)
        | Error e -> Alcotest.fail e)
      | `Need_more | `Error _ -> Alcotest.fail "frame did not decode")
    messages

(* --------------------------- handshake ------------------------------ *)

let test_auth_token () =
  with_daemon (daemon_config ~auth_token:"hunter2" ()) @@ fun handle ->
  (* No token: rejected before any work is admitted. *)
  (match Client.connect handle.Daemon.address with
  | Error (Client.Rejected reason) ->
    check_string "reason names the token" "bad auth token" reason
  | Ok _ -> Alcotest.fail "tokenless handshake must be rejected"
  | Error e -> Alcotest.fail (Client.connect_error_message e));
  (* Wrong token: same rejection. *)
  (match Client.connect ~auth_token:"hunter3" handle.Daemon.address with
  | Error (Client.Rejected _) -> ()
  | Ok _ -> Alcotest.fail "wrong token must be rejected"
  | _ -> Alcotest.fail "wrong token: expected Rejected");
  (* Right token: handshake completes and work flows. *)
  let client = connect_exn ~auth_token:"hunter2" handle.Daemon.address in
  Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
  check_bool "advertised window is positive" true (Client.window client > 0);
  check_string "request served" (Lazy.force reference)
    (render_reply (submit_exn client (request "auth-ok")))

let test_version_rejection () =
  with_daemon (daemon_config ()) @@ fun handle ->
  let path =
    match handle.Daemon.address with
    | Protocol.Unix_socket path -> path
    | Protocol.Tcp _ -> Alcotest.fail "expected a unix socket"
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX path);
  (* A syntactically sound frame header claiming protocol version 999:
     the daemon must classify it at the frame layer and hang up. *)
  let header = Bytes.make 16 '\000' in
  Bytes.blit_string "TSGW" 0 header 0 4;
  Bytes.set header 6 '\003';
  Bytes.set header 7 '\231' (* 999 big-endian *);
  let _ = Unix.write fd header 0 16 in
  let buffer = Bytes.create 64 in
  check_int "server hangs up (EOF, no reply frame)" 0
    (try Unix.read fd buffer 0 64 with Unix.Unix_error _ -> 0)

let test_idle_timeout () =
  with_daemon (daemon_config ~idle_timeout_s:0.3 ()) @@ fun handle ->
  let client = connect_exn handle.Daemon.address in
  Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
  let started = Unix.gettimeofday () in
  (* Block for a reply that never comes: the server must close us. *)
  (match Client.read_reply client with
  | Error Client.Connection_closed -> ()
  | Ok _ -> Alcotest.fail "no reply was due"
  | Error e -> Alcotest.fail (Client.error_message e));
  let waited = Unix.gettimeofday () -. started in
  check_bool "closed after the idle deadline, not before" true (waited >= 0.29);
  check_bool "closed promptly (server not hung)" true (waited < 5.)

(* ------------------------ ordering and limits ----------------------- *)

let test_pipelined_inorder_under_skew () =
  with_daemon (daemon_config ~procs:2 ()) @@ fun handle ->
  let client = connect_exn handle.Daemon.address in
  Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
  let requests = List.init 6 (fun i -> request (Printf.sprintf "skew-%d" i)) in
  (* The first request sleeps; the rest are instant. Strict ordering
     means every fast reply parks behind the slow head. *)
  let fault (r : Service.request) =
    if r.Service.id = "skew-0" then GWire.Sleep_s 0.3 else GWire.No_fault
  in
  let replies =
    match Client.submit_all client ~fault requests with
    | Ok replies -> replies
    | Error e -> Alcotest.fail (Client.error_message e)
  in
  check_int "one reply per request" (List.length requests)
    (List.length replies);
  List.iteri
    (fun i reply ->
      check_string
        (Printf.sprintf "reply %d is in submission order" i)
        (Printf.sprintf "skew-%d" i)
        reply.Protocol.id;
      check_string
        (Printf.sprintf "reply %d byte-identical to the reference" i)
        (Lazy.force reference) (render_reply reply))
    replies

let test_conn_inflight_limit () =
  with_daemon (daemon_config ~procs:2 ~inflight:2 ()) @@ fun handle ->
  let client = connect_exn handle.Daemon.address in
  Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
  check_int "server advertises its window" 2 (Client.window client);
  let requests = List.init 5 (fun i -> request (Printf.sprintf "win-%d" i)) in
  (* Push past the advertised window on purpose: the excess must come
     back as typed, in-order refusals carrying the window size. *)
  let replies =
    match
      Client.submit_all client ~window:5
        ~fault:(fun _ -> GWire.Sleep_s 0.3)
        requests
    with
    | Ok replies -> replies
    | Error e -> Alcotest.fail (Client.error_message e)
  in
  let outcomes =
    List.map
      (fun (reply : Protocol.reply) ->
        match reply.Protocol.outcome with
        | Ok _ -> "ok"
        | Error (Gw.Gateway_overloaded { capacity; _ }) ->
          check_int "refusal carries the per-connection window" 2 capacity;
          "refused"
        | Error e -> "ERROR: " ^ Gw.error_message e)
      replies
  in
  check_bool
    (Printf.sprintf "first two admitted, rest refused (got %s)"
       (String.concat "," outcomes))
    true
    (outcomes = [ "ok"; "ok"; "refused"; "refused"; "refused" ])

let test_quota_retry_after_crosses_the_wire () =
  with_daemon (daemon_config ~site_quota:1.0 ()) @@ fun handle ->
  let client = connect_exn handle.Daemon.address in
  Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
  (* Burst is one second of quota = exactly one token: the first
     request is admitted, the second must bounce with a usable hint. *)
  check_string "first request admitted" (Lazy.force reference)
    (render_reply (submit_exn client (request "quota-0")));
  match (submit_exn client (request "quota-1")).Protocol.outcome with
  | Error (Gw.Quota_exceeded { site; retry_after_s }) ->
    check_string "rejection names the site" "daemon-test" site;
    check_bool "retry-after hint is positive" true (retry_after_s > 0.);
    check_bool "retry-after hint is sane" true (retry_after_s <= 1.)
  | Ok _ -> Alcotest.fail "second request should exceed the quota"
  | Error e -> Alcotest.fail ("wrong error: " ^ Gw.error_message e)

let test_stream_roundtrip () =
  (* A Submit_stream delivers every record as a Reply_record before the
     terminal Reply, indexed 0..n-1 in emission order, and the terminal
     reply is byte-identical to what a plain Submit returns. The
     connection stays usable for plain submits afterwards. *)
  with_daemon (daemon_config ~procs:2 ()) @@ fun handle ->
  let client = connect_exn handle.Daemon.address in
  Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
  let streamed = ref [] in
  (match
     Client.submit_stream client
       ~on_record:(fun index record ->
         streamed := (index, record) :: !streamed)
       (request "stream-0")
   with
  | Error e -> Alcotest.fail (Client.error_message e)
  | Ok reply -> (
    check_string "terminal stream reply byte-identical to a plain submit"
      (Lazy.force reference) (render_reply reply);
    match reply.Protocol.outcome with
    | Error error -> Alcotest.fail ("stream errored: " ^ Gw.error_message error)
    | Ok result ->
      let records =
        result.Tabseg.Api.segmentation.Tabseg.Segmentation.records
      in
      let streamed = List.rev !streamed in
      check_int "every record streamed before the terminal reply"
        (List.length records) (List.length streamed);
      List.iteri
        (fun i (index, record) ->
          check_int "record frames are indexed in order" i index;
          check_bool "streamed record equals its batch twin" true
            (record = List.nth records i))
        streamed));
  let reply = submit_exn client (request "after-stream") in
  check_string "plain submit still works after a stream"
    (Lazy.force reference) (render_reply reply)

(* ------------------------- failure modes ---------------------------- *)

let test_disconnect_mid_request () =
  with_daemon (daemon_config ~procs:2 ()) @@ fun handle ->
  (* Client A walks away from an in-flight request... *)
  let a = connect_exn ~client:"deserter" handle.Daemon.address in
  (match Client.send_submit a ~fault:(GWire.Sleep_s 0.4) (request "orphan") with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Client.error_message e));
  Client.close a;
  (* ...and the daemon keeps serving everyone else meanwhile. *)
  let b = connect_exn ~client:"survivor" handle.Daemon.address in
  Fun.protect ~finally:(fun () -> Client.close b) @@ fun () ->
  check_string "other connections are unaffected" (Lazy.force reference)
    (render_reply (submit_exn b (request "alive")));
  (* Once the orphaned request completes, its reply is counted, not
     delivered, and the daemon is still healthy. *)
  GWire.sleep_s 0.6;
  let stats =
    match Client.stats b with
    | Ok stats -> stats
    | Error e -> Alcotest.fail (Client.error_message e)
  in
  check_bool "orphaned reply was counted" true
    (List.assoc "daemon.orphaned_replies" stats >= 1.);
  check_int "no worker was lost to the disconnect" 0
    (int_of_float (List.assoc "gateway.worker_restarts" stats));
  check_string "daemon still serves after the orphan resolved"
    (Lazy.force reference)
    (render_reply (submit_exn b (request "still-alive")))

(* A forged header claiming a ~2 GB payload: the daemon must classify
   it at the frame layer (typed Frame_too_large inside Conn's close
   reason), hang up without allocating, and keep serving everyone
   else. *)
let test_oversize_frame_refused () =
  with_daemon (daemon_config ()) @@ fun handle ->
  let path =
    match handle.Daemon.address with
    | Protocol.Unix_socket path -> path
    | Protocol.Tcp _ -> Alcotest.fail "expected a unix socket"
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX path);
  let u32_be v =
    let b = Bytes.create 4 in
    Bytes.set b 0 (Char.chr ((v lsr 24) land 0xff));
    Bytes.set b 1 (Char.chr ((v lsr 16) land 0xff));
    Bytes.set b 2 (Char.chr ((v lsr 8) land 0xff));
    Bytes.set b 3 (Char.chr (v land 0xff));
    Bytes.to_string b
  in
  let header =
    "TSGW" ^ u32_be GWire.protocol_version ^ u32_be 0 ^ u32_be 2_000_000_000
  in
  let _ = Unix.write_substring fd header 0 (String.length header) in
  let buffer = Bytes.create 64 in
  check_int "server hangs up (EOF, no reply frame)" 0
    (try Unix.read fd buffer 0 64 with Unix.Unix_error _ -> 0);
  (* The fleet is untouched: a well-behaved client still gets served. *)
  let client = connect_exn handle.Daemon.address in
  Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
  check_string "daemon still serves after the forged frame"
    (Lazy.force reference)
    (render_reply (submit_exn client (request "post-forgery")));
  let stats =
    match Client.stats client with
    | Ok stats -> stats
    | Error e -> Alcotest.fail (Client.error_message e)
  in
  check_int "no worker was lost to the forged frame" 0
    (int_of_float (List.assoc "gateway.worker_restarts" stats))

(* An oversized Hello (client name or token) is refused before the auth
   check and counted in daemon.hello_oversized. *)
let test_oversized_hello_rejected () =
  with_daemon (daemon_config ()) @@ fun handle ->
  (match
     Client.connect ~client:(String.make 300 'x') handle.Daemon.address
   with
  | Error (Client.Rejected reason) ->
    check_string "reason names the limit" "hello client/token too long" reason
  | Ok _ -> Alcotest.fail "oversized client name must be rejected"
  | Error e -> Alcotest.fail (Client.connect_error_message e));
  (match
     Client.connect
       ~auth_token:(String.make 2_000 't')
       handle.Daemon.address
   with
  | Error (Client.Rejected _) -> ()
  | Ok _ -> Alcotest.fail "oversized token must be rejected"
  | _ -> Alcotest.fail "oversized token: expected Rejected");
  (* A name at exactly the cap is legal, and the rejections above were
     counted. *)
  let client =
    connect_exn
      ~client:(String.make Protocol.max_hello_client_len 'y')
      handle.Daemon.address
  in
  Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
  check_string "cap-length client name is served" (Lazy.force reference)
    (render_reply (submit_exn client (request "cap-name")));
  let stats =
    match Client.stats client with
    | Ok stats -> stats
    | Error e -> Alcotest.fail (Client.error_message e)
  in
  check_int "both oversized hellos were counted" 2
    (int_of_float (List.assoc "daemon.hello_oversized" stats))

let test_sigterm_drain () =
  let config = daemon_config ~procs:2 () in
  let handle = Daemon.spawn ~config () in
  let client = connect_exn handle.Daemon.address in
  Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
  (* In-flight work before the signal... *)
  (match
     Client.send_submit client ~fault:(GWire.Sleep_s 0.4) (request "inflight")
   with
  | Ok seq -> check_int "first submit has seq 0" 0 seq
  | Error e -> Alcotest.fail (Client.error_message e));
  (* Writing the frame is not the same as the daemon having read it: if
     SIGTERM wins that race the submit is (correctly) a late frame and
     gets refused as Draining instead of running. Stats are answered
     out-of-band, so poll them until the request is counted — only then
     is it genuinely in flight. *)
  let rec await_admission tries =
    let seen =
      match Client.stats client with
      | Ok stats -> List.assoc "daemon.requests" stats >= 1.
      | Error e -> Alcotest.fail (Client.error_message e)
    in
    if not seen then
      if tries <= 0 then Alcotest.fail "daemon never admitted the submit"
      else begin
        GWire.sleep_s 0.01;
        await_admission (tries - 1)
      end
  in
  await_admission 200;
  Unix.kill handle.Daemon.pid Sys.sigterm;
  GWire.sleep_s 0.15;
  (* ...then a late frame into the draining server. *)
  (match Client.send_submit client (request "late") with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Client.error_message e));
  (* The in-flight request still completes, in order... *)
  (match Client.read_reply client with
  | Ok (0, reply) ->
    check_string "in-flight work finished during the drain"
      (Lazy.force reference) (render_reply reply)
  | Ok (seq, _) -> Alcotest.fail (Printf.sprintf "unexpected seq %d" seq)
  | Error e -> Alcotest.fail (Client.error_message e));
  (* ...the late one is refused with the typed drain error... *)
  (match Client.read_reply client with
  | Ok (_, { Protocol.outcome = Error Gw.Draining; _ }) -> ()
  | Ok (_, reply) ->
    Alcotest.fail ("late submit not refused as Draining: " ^ render_reply reply)
  | Error e -> Alcotest.fail (Client.error_message e));
  (* ...and then the server closes us and exits cleanly. *)
  (match Client.read_reply client with
  | Error Client.Connection_closed -> ()
  | Ok _ -> Alcotest.fail "no further reply was due"
  | Error e -> Alcotest.fail (Client.error_message e));
  check_int "daemon exited 0 after the drain" 0 (Daemon.stop handle)

(* ----------------------------- transports --------------------------- *)

let test_tcp_listener () =
  let config =
    {
      (daemon_config ()) with
      Daemon.listen = Protocol.Tcp ("127.0.0.1", 0);
    }
  in
  with_daemon config @@ fun handle ->
  (match handle.Daemon.address with
  | Protocol.Tcp ("127.0.0.1", port) ->
    check_bool "kernel-assigned port is real" true (port > 0)
  | other ->
    Alcotest.fail
      ("expected a tcp address, got " ^ Protocol.address_to_string other));
  let client = connect_exn handle.Daemon.address in
  Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
  check_string "request served over tcp" (Lazy.force reference)
    (render_reply (submit_exn client (request "tcp")))

(* ------------------------------ loadgen ----------------------------- *)

let test_loadgen_closed_loop () =
  with_daemon (daemon_config ~procs:2 ()) @@ fun handle ->
  let config =
    {
      Loadgen.default_config with
      Loadgen.address = handle.Daemon.address;
      connections = 2;
      mode = Loadgen.Closed_loop { pipeline = 2 };
      duration_s = 0.4;
      sites = [| ("daemon-test", Lazy.force small_input) |];
      expected = [ ("daemon-test", Lazy.force reference) ];
    }
  in
  match Loadgen.run config with
  | Error why -> Alcotest.fail why
  | Ok stats ->
    check_bool "offered some load" true (stats.Loadgen.offered > 0);
    check_int "everything offered completed" stats.Loadgen.offered
      stats.Loadgen.completed;
    check_int "nothing failed" 0 stats.Loadgen.failed;
    check_int "replies byte-identical under load" 0 stats.Loadgen.mismatches;
    check_bool "latency percentiles are ordered" true
      (stats.Loadgen.p50_ms <= stats.Loadgen.p95_ms
      && stats.Loadgen.p95_ms <= stats.Loadgen.p99_ms)

let test_loadgen_stream_ttfr () =
  (* Stream mode under pipelined load: records arrive, byte-identity
     still holds, and the coordinated-omission-free TTFR percentiles
     are ordered and never later than the full-reply percentiles. *)
  with_daemon (daemon_config ~procs:2 ()) @@ fun handle ->
  let config =
    {
      Loadgen.default_config with
      Loadgen.address = handle.Daemon.address;
      connections = 2;
      mode = Loadgen.Closed_loop { pipeline = 2 };
      duration_s = 0.4;
      sites = [| ("daemon-test", Lazy.force small_input) |];
      expected = [ ("daemon-test", Lazy.force reference) ];
      stream = true;
    }
  in
  match Loadgen.run config with
  | Error why -> Alcotest.fail why
  | Ok stats ->
    check_bool "streams carried record frames" true
      (stats.Loadgen.records > 0);
    check_int "nothing failed while streaming" 0 stats.Loadgen.failed;
    check_int "byte-identity holds while streaming" 0
      stats.Loadgen.mismatches;
    check_bool "ttfr percentiles are ordered" true
      (stats.Loadgen.ttfr_p50_ms <= stats.Loadgen.ttfr_p95_ms
      && stats.Loadgen.ttfr_p95_ms <= stats.Loadgen.ttfr_p99_ms);
    check_bool "first record is never later than the full reply" true
      (stats.Loadgen.ttfr_p50_ms <= stats.Loadgen.p50_ms)

let test_loadgen_quota_retry_recovers () =
  with_daemon (daemon_config ~site_quota:20.0 ()) @@ fun handle ->
  let run retry =
    let config =
      {
        Loadgen.default_config with
        Loadgen.address = handle.Daemon.address;
        connections = 2;
        mode = Loadgen.Open_loop { rate = 150. };
        duration_s = 0.4;
        drain_timeout_s = 3.0;
        sites = [| ("daemon-test", Lazy.force small_input) |];
        retry_quota = retry;
        max_retries = 5;
      }
    in
    match Loadgen.run config with
    | Error why -> Alcotest.fail why
    | Ok stats -> stats
  in
  let naive = run false in
  check_bool "naive client was quota-limited" true (naive.Loadgen.abandoned > 0);
  check_int "naive client never retries" 0 naive.Loadgen.retried;
  let retry = run true in
  check_bool "retrying client retried" true (retry.Loadgen.retried > 0);
  check_bool "retrying client recovered rejected work" true
    (retry.Loadgen.recovered > 0);
  check_bool "retrying beats naive on completed work" true
    (retry.Loadgen.ok > naive.Loadgen.ok)

let () =
  Alcotest.run "daemon"
    [
      ( "protocol",
        [
          Alcotest.test_case "address parsing" `Quick test_address_parsing;
          Alcotest.test_case "message roundtrip" `Quick test_message_roundtrip;
        ] );
      ( "handshake",
        [
          Alcotest.test_case "auth token gates admission" `Slow
            test_auth_token;
          Alcotest.test_case "wrong frame version hangs up" `Slow
            test_version_rejection;
          Alcotest.test_case "idle connections are closed" `Slow
            test_idle_timeout;
          Alcotest.test_case "forged 2 GB frame is refused, fleet healthy"
            `Slow test_oversize_frame_refused;
          Alcotest.test_case "oversized Hello is rejected and counted" `Slow
            test_oversized_hello_rejected;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "pipelined in-order under latency skew" `Slow
            test_pipelined_inorder_under_skew;
          Alcotest.test_case "inflight window refuses in-order" `Slow
            test_conn_inflight_limit;
          Alcotest.test_case "quota retry-after crosses the wire" `Slow
            test_quota_retry_after_crosses_the_wire;
          Alcotest.test_case "stream roundtrip: records before the reply"
            `Slow test_stream_roundtrip;
        ] );
      ( "failure",
        [
          Alcotest.test_case "client disconnect mid-request" `Slow
            test_disconnect_mid_request;
          Alcotest.test_case "SIGTERM drains and exits 0" `Slow
            test_sigterm_drain;
        ] );
      ( "transport",
        [ Alcotest.test_case "tcp listener" `Slow test_tcp_listener ] );
      ( "loadgen",
        [
          Alcotest.test_case "closed loop, byte-identical" `Slow
            test_loadgen_closed_loop;
          Alcotest.test_case "stream mode: records and TTFR percentiles"
            `Slow test_loadgen_stream_ttfr;
          Alcotest.test_case "quota retry recovers goodput" `Slow
            test_loadgen_quota_retry_recovers;
        ] );
    ]
