(* The fault-injection layer and the resilient crawler on top of it:
   determinism of the chaos (fixed seed => identical schedules, reports
   and segmentations), recovery under transient faults, and graceful
   degradation of the pipeline when detail pages are lost for good. *)

open Tabseg_navigator
open Tabseg_sitegen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let site () = Sites.find "ButlerCounty"

let graph_of site = Simulate.graph_of_site (Sites.generate site)

let transient_config rate seed =
  {
    Faults.default_config with
    Faults.seed;
    fault_rate = rate;
    permanent_rate = 0.;
  }

(* ------------------------- fault plans ----------------------------- *)

let test_plans_deterministic () =
  let config = transient_config 0.5 7 in
  let graph = graph_of (site ()) in
  let a = Faults.wrap ~config graph in
  let b = Faults.wrap ~config graph in
  List.iter
    (fun url ->
      check_bool ("same plan for " ^ url) true
        (Faults.plan_for a url = Faults.plan_for b url))
    (Webgraph.urls graph);
  (* Plans are a function of (seed, url), not of query order. *)
  let c = Faults.wrap ~config graph in
  let urls = Webgraph.urls graph in
  List.iter (fun url -> ignore (Faults.plan_for c url)) (List.rev urls);
  List.iter
    (fun url ->
      check_bool "order-independent" true
        (Faults.plan_for a url = Faults.plan_for c url))
    urls

let test_transient_fault_retires () =
  let graph = graph_of (site ()) in
  let faults = Faults.pristine graph in
  Faults.set_plan faults "entry.html"
    (Faults.Transient (Faults.Server_error, 2));
  check_bool "attempt 1 fails" true
    (Faults.fetch faults "entry.html" = Faults.Failed Faults.Server_error);
  check_bool "attempt 2 fails" true
    (Faults.fetch faults "entry.html" = Faults.Failed Faults.Server_error);
  (match Faults.fetch faults "entry.html" with
  | Faults.Body _ -> ()
  | _ -> Alcotest.fail "attempt 3 should succeed");
  Faults.set_plan faults "about.html" (Faults.Permanent Faults.Timeout);
  for _ = 1 to 5 do
    check_bool "permanent stays failed" true
      (Faults.fetch faults "about.html" = Faults.Failed Faults.Timeout)
  done

let test_damaged_bodies_deterministic () =
  let graph = graph_of (site ()) in
  let damaged kind =
    let faults = Faults.wrap ~config:(transient_config 0.0 3) graph in
    Faults.set_plan faults "about.html" (Faults.Permanent kind);
    match Faults.fetch faults "about.html" with
    | Faults.Damaged (html, failure) ->
      check_bool "failure class kept" true (failure = kind);
      html
    | _ -> Alcotest.fail "expected a damaged body"
  in
  let original =
    match Webgraph.fetch graph "about.html" with
    | Some html -> html
    | None -> assert false
  in
  let truncated = damaged Faults.Truncated_body in
  check_bool "truncated is a strict prefix" true
    (String.length truncated < String.length original
    && String.sub original 0 (String.length truncated) = truncated);
  check_bool "truncation is reproducible" true
    (truncated = damaged Faults.Truncated_body);
  let garbled = damaged Faults.Garbled_body in
  check_bool "garbling keeps length" true
    (String.length garbled = String.length original);
  check_bool "garbling changes bytes" true (garbled <> original);
  check_bool "garbling is reproducible" true
    (garbled = damaged Faults.Garbled_body)

(* ------------------------ retry schedules -------------------------- *)

let test_backoff_deterministic () =
  let policy = Crawler.default_retry_policy in
  let a = Crawler.backoff_delays policy ~url:"detail_0_1.html" in
  let b = Crawler.backoff_delays policy ~url:"detail_0_1.html" in
  Alcotest.(check (list int)) "same seed, same schedule" a b;
  check_int "one delay per retry" (policy.Crawler.max_attempts - 1)
    (List.length a);
  (* Exponential growth survives the jitter because jitter < factor-1. *)
  let rec ascending = function
    | x :: (y :: _ as rest) -> x < y && ascending rest
    | _ -> true
  in
  check_bool "monotone backoff" true (ascending a);
  let other =
    Crawler.backoff_delays
      { policy with Crawler.seed = policy.Crawler.seed + 1 }
      ~url:"detail_0_1.html"
  in
  check_bool "different seed, different jitter" true (a <> other);
  List.iter2
    (fun x y ->
      check_bool "jitter bounded" true
        (abs (x - y)
        <= int_of_float
             (float_of_int (max x y) *. policy.Crawler.jitter)))
    a other

(* -------------------- recovery under chaos ------------------------- *)

let test_crawl_recovers_under_transient_faults () =
  (* 30% of URLs fail transiently; the default policy retries past every
     transient plan, so the crawl must recover every reachable page. *)
  List.iter
    (fun seed ->
      let graph = graph_of (site ()) in
      let faults = Faults.wrap ~config:(transient_config 0.3 seed) graph in
      let pages, report = Crawler.crawl_resilient faults in
      let recovered = List.length pages in
      let total = Webgraph.size graph in
      check_bool
        (Printf.sprintf "seed %d: recovered %d of %d" seed recovered total)
        true
        (float_of_int recovered >= 0.95 *. float_of_int total);
      check_int "nothing given up" 0 report.Crawler.giveups;
      check_bool "faults actually fired" true (report.Crawler.retries > 0);
      check_bool "every page clean in the end" true
        (report.Crawler.pages_damaged = 0))
    [ 1; 2; 3; 4; 5 ]

let test_crawl_deterministic_under_chaos () =
  let run () =
    let graph = graph_of (site ()) in
    let config =
      { (transient_config 0.4 11) with Faults.permanent_rate = 0.3 }
    in
    let faults = Faults.wrap ~config graph in
    Crawler.crawl_resilient faults
  in
  let pages_a, report_a = run () in
  let pages_b, report_b = run () in
  check_bool "identical page lists" true (pages_a = pages_b);
  check_bool "identical reports" true (report_a = report_b)

let test_circuit_breaker_trips () =
  (* A healthy entry page fanning out to a dead backend: the run of
     consecutive failures must trip the breaker, the crawl must wait out
     the cooldown on the virtual clock and still terminate with every
     loss accounted. *)
  let n = 6 in
  let hub =
    String.concat ""
      (List.init n (fun i ->
           Printf.sprintf {|<a href="p%d.html">p%d</a>|} i i))
  in
  let graph =
    Webgraph.make ~entry:"hub.html"
      ~pages:
        (("hub.html", hub)
        :: List.init n (fun i -> (Printf.sprintf "p%d.html" i, "leaf")))
  in
  let faults = Faults.pristine graph in
  List.iter
    (fun i ->
      Faults.set_plan faults
        (Printf.sprintf "p%d.html" i)
        (Faults.Permanent Faults.Timeout))
    (List.init n (fun i -> i));
  let pages, report = Crawler.crawl_resilient faults in
  check_int "only the hub fetched" 1 (List.length pages);
  check_int "all leaves given up" n report.Crawler.giveups;
  check_bool "breaker tripped" true (report.Crawler.breaker_trips >= 1);
  check_bool "cooldowns waited out" true (report.Crawler.breaker_wait_ms > 0);
  check_bool "timeouts recorded" true
    (List.mem_assoc Faults.Timeout report.Crawler.failures)

let test_retry_budget_respected () =
  let graph = graph_of (site ()) in
  let faults = Faults.wrap ~config:(transient_config 0.6 5) graph in
  let retry = { Crawler.default_retry_policy with Crawler.retry_budget = 3 } in
  let _pages, report = Crawler.crawl_resilient ~retry faults in
  check_bool "at most 3 retries" true (report.Crawler.retries <= 3);
  check_bool "budget flagged" true report.Crawler.budget_exhausted

(* ------------------- graceful pipeline degradation ----------------- *)

let test_auto_survives_lost_details () =
  let generated = Sites.generate (site ()) in
  let graph = Simulate.graph_of_site generated in
  let faults = Faults.pristine graph in
  Faults.set_plan faults "detail_0_1.html"
    (Faults.Permanent Faults.Server_error);
  Faults.set_plan faults "detail_1_4.html" (Faults.Permanent Faults.Timeout);
  let report = Auto.run_resilient faults in
  check_int "both losses counted" 2 report.Auto.details_missing;
  check_int "two give-ups" 2 report.Auto.crawl.Crawler.giveups;
  check_int "still two segmentations" 2 (List.length report.Auto.results);
  List.iter
    (fun result ->
      check_int
        (result.Auto.list_url ^ " has one missing detail")
        1
        (List.length result.Auto.missing_details);
      check_bool "missing note" true
        (List.mem Tabseg.Segmentation.Detail_missing
           result.Auto.segmentation.Tabseg.Segmentation.notes);
      check_bool "degraded-crawl note" true
        (List.mem Tabseg.Segmentation.Degraded_crawl
           result.Auto.segmentation.Tabseg.Segmentation.notes);
      (* The lost URL still occupies its slot in record order. *)
      check_bool "missing url in detail_urls" true
        (List.for_all
           (fun url -> List.mem url result.Auto.detail_urls)
           result.Auto.missing_details))
    report.Auto.results

let test_auto_survives_corrupted_details () =
  let generated = Sites.generate (site ()) in
  let graph = Simulate.graph_of_site generated in
  let faults = Faults.pristine graph in
  Faults.set_plan faults "detail_0_2.html"
    (Faults.Permanent Faults.Garbled_body);
  let report = Auto.run_resilient faults in
  check_int "corruption counted" 1 report.Auto.details_corrupted;
  check_int "still two segmentations" 2 (List.length report.Auto.results);
  let result =
    List.find (fun r -> r.Auto.list_url = "list_0.html") report.Auto.results
  in
  Alcotest.(check (list string))
    "corrupted detail recorded" [ "detail_0_2.html" ]
    result.Auto.corrupted_details;
  check_bool "corrupted note" true
    (List.mem Tabseg.Segmentation.Detail_corrupted
       result.Auto.segmentation.Tabseg.Segmentation.notes)

let test_auto_all_details_lost_is_reported () =
  let generated = Sites.generate (site ()) in
  let graph = Simulate.graph_of_site generated in
  let faults = Faults.pristine graph in
  List.iter
    (fun url ->
      if
        String.length url >= 8
        && String.sub url 0 8 = "detail_0"
      then Faults.set_plan faults url (Faults.Permanent Faults.Server_error))
    (Webgraph.urls graph);
  let report = Auto.run_resilient faults in
  (* list_0's details are all gone: it must land in [skipped] with a
     typed error, never raise; list_1 still segments. *)
  check_bool "list_0 skipped with typed error" true
    (List.exists
       (fun (url, error) ->
         url = "list_0.html" && error = Tabseg.Api.All_details_lost)
       report.Auto.skipped);
  check_bool "list_1 still segmented" true
    (List.exists
       (fun r -> r.Auto.list_url = "list_1.html")
       report.Auto.results)

let test_auto_deterministic_under_chaos () =
  let run () =
    let generated = Sites.generate (site ()) in
    let graph = Simulate.graph_of_site generated in
    let config =
      { (transient_config 0.3 21) with Faults.permanent_rate = 0.25 }
    in
    let report = Auto.run_resilient (Faults.wrap ~config graph) in
    ( report.Auto.crawl,
      List.map
        (fun r ->
          ( r.Auto.list_url,
            Tabseg.Segmentation.record_texts r.Auto.segmentation,
            r.Auto.missing_details ))
        report.Auto.results )
  in
  check_bool "two chaos runs agree" true (run () = run ())

(* Segmentation with k details blanked: structural invariants always
   hold, and accuracy degrades monotonically as losses grow (the blanked
   sets are nested, so each step can only remove evidence). *)
let test_degradation_monotone () =
  let generated = Sites.generate (site ()) in
  let page = List.hd generated.Sites.pages in
  let list_pages, detail_pages =
    Sites.segmentation_input generated ~page_index:0
  in
  let details = Array.of_list detail_pages in
  let total = Array.length details in
  let correct_with k =
    let detail_pages =
      Array.to_list
        (Array.mapi (fun i html -> if i < k then "" else html) details)
    in
    let input = { Tabseg.Pipeline.list_pages; detail_pages } in
    match
      Tabseg.Api.segment_result ~method_:Tabseg.Api.Probabilistic input
    with
    | Error error ->
      Alcotest.failf "k=%d rejected: %s" k
        (Tabseg.Api.input_error_message error)
    | Ok outcome ->
      let segmentation = outcome.Tabseg.Api.segmentation in
      (* Structural invariants under degradation. *)
      let records = segmentation.Tabseg.Segmentation.records in
      let numbers =
        List.map
          (fun (r : Tabseg.Segmentation.record) ->
            r.Tabseg.Segmentation.number)
          records
      in
      check_bool "record numbers valid and ascending" true
        (List.sort_uniq compare numbers = numbers
        && List.for_all (fun n -> n >= 0 && n < total) numbers);
      let ids =
        List.concat_map
          (fun (r : Tabseg.Segmentation.record) ->
            List.map
              (fun (e : Tabseg_extract.Extract.t) ->
                e.Tabseg_extract.Extract.id)
              r.Tabseg.Segmentation.extracts)
          records
      in
      check_bool "no extract in two records" true
        (List.sort_uniq compare ids = List.sort compare ids);
      let counts =
        Tabseg_eval.Scorer.score ~truth:page.Sites.truth segmentation
      in
      counts.Tabseg_eval.Metrics.cor
  in
  let ks = [ 0; 1; 3; 6; total - 1 ] in
  let scores = List.map correct_with ks in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a >= b && monotone rest
    | _ -> true
  in
  check_bool
    (Printf.sprintf "correct counts non-increasing in k: %s"
       (String.concat " " (List.map string_of_int scores)))
    true (monotone scores);
  check_bool "no blanking is best" true (List.hd scores > 0);
  (* Losing every detail page is no longer a segmentation problem — it is
     a typed input error. *)
  let all_blank =
    { Tabseg.Pipeline.list_pages;
      detail_pages = List.map (fun _ -> "") detail_pages }
  in
  check_bool "k=total is a typed error" true
    (Tabseg.Api.segment_result ~method_:Tabseg.Api.Probabilistic all_blank
    = Error Tabseg.Api.All_details_lost)

(* Zero-cost when healthy: the resilient crawl over a pristine source is
   the plain BFS, reports included. *)
let test_pristine_is_zero_cost () =
  let graph = graph_of (site ()) in
  let pages = Crawler.crawl graph in
  let graph2 = graph_of (site ()) in
  let fetched, report = Crawler.crawl_resilient (Faults.pristine graph2) in
  check_bool "same pages" true
    (pages = List.map (fun (f : Crawler.fetched) -> f.Crawler.page) fetched);
  check_int "one attempt per page" (List.length pages)
    report.Crawler.attempts;
  check_int "no retries" 0 report.Crawler.retries;
  check_int "no virtual time" 0 report.Crawler.elapsed_ms;
  check_int "no damage" 0 report.Crawler.pages_damaged

let () =
  Alcotest.run "tabseg_faults"
    [
      ( "faults",
        [
          Alcotest.test_case "plans deterministic" `Quick
            test_plans_deterministic;
          Alcotest.test_case "transient retires" `Quick
            test_transient_fault_retires;
          Alcotest.test_case "damaged bodies deterministic" `Quick
            test_damaged_bodies_deterministic;
        ] );
      ( "retry",
        [
          Alcotest.test_case "backoff deterministic" `Quick
            test_backoff_deterministic;
          Alcotest.test_case "budget respected" `Quick
            test_retry_budget_respected;
        ] );
      ( "crawl",
        [
          Alcotest.test_case "recovers under 30% transient faults" `Slow
            test_crawl_recovers_under_transient_faults;
          Alcotest.test_case "deterministic under chaos" `Slow
            test_crawl_deterministic_under_chaos;
          Alcotest.test_case "circuit breaker trips" `Quick
            test_circuit_breaker_trips;
          Alcotest.test_case "pristine is zero-cost" `Quick
            test_pristine_is_zero_cost;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "auto survives lost details" `Slow
            test_auto_survives_lost_details;
          Alcotest.test_case "auto survives corrupted details" `Slow
            test_auto_survives_corrupted_details;
          Alcotest.test_case "all details lost is typed" `Slow
            test_auto_all_details_lost_is_reported;
          Alcotest.test_case "auto deterministic under chaos" `Slow
            test_auto_deterministic_under_chaos;
          Alcotest.test_case "accuracy degrades monotonically" `Slow
            test_degradation_monotone;
        ] );
    ]
