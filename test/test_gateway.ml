(* The multi-process gateway: wire-frame integrity (roundtrip, CRC
   damage, version skew as typed decode errors), byte-identity of the
   procs=2 merge against the sequential reference, in-order merge under
   adversarial per-worker latency skew, worker-crash recovery via a
   single re-dispatch, permanent worker loss as a typed error, deadline
   expiry at the master, and SIGTERM drain semantics. *)

open Tabseg_serve
open Tabseg_gateway
open Tabseg_sitegen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let render segmentation =
  Format.asprintf "%a" Tabseg.Segmentation.pp segmentation

let render_response (response : Gateway.response) =
  match response.Gateway.outcome with
  | Ok result -> render result.Tabseg.Api.segmentation
  | Error error -> "ERROR: " ^ Gateway.error_message error

let requests_of site_names =
  List.concat_map
    (fun name ->
      let site = Sites.find name in
      let generated = Sites.generate site in
      List.mapi
        (fun page_index _ ->
          let list_pages, detail_pages =
            Sites.segmentation_input generated ~page_index
          in
          {
            Service.id = Printf.sprintf "%s#%d" name page_index;
            site = name;
            input = { Tabseg.Pipeline.list_pages; detail_pages };
          })
        generated.Sites.pages)
    site_names

let sequential_reference requests =
  List.map
    (fun (request : Service.request) ->
      match
        Tabseg.Api.segment_result ~method_:Tabseg.Api.Probabilistic
          request.Service.input
      with
      | Ok result -> render result.Tabseg.Api.segmentation
      | Error error -> "ERROR: " ^ Tabseg.Api.input_error_message error)
    requests

let with_gateway config f =
  let gateway = Gateway.create ~config () in
  Fun.protect ~finally:(fun () -> Gateway.shutdown gateway) (fun () ->
      f gateway)

let temp_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tabseg_gw_%d_%d" (Unix.getpid ()) !counter)

let counter_value gateway name =
  Metrics.counter_value (Metrics.counter (Gateway.metrics gateway) name)

(* ------------------------------ wire -------------------------------- *)

let roundtrip message = Wire.decode (Wire.encode message)

let test_wire_roundtrip () =
  let messages =
    [
      Wire.Hello { pid = 4242; role = "writer"; jobs = 2; queue_capacity = 64 };
      Wire.Ping 7;
      Wire.Pong { token = 7; inflight = 1; queue_depth = 3 };
      Wire.Shutdown;
      Wire.Request
        {
          seq = 12;
          request =
            {
              Service.id = "r12";
              site = "example";
              input =
                {
                  Tabseg.Pipeline.list_pages = [ "<html>x</html>" ];
                  detail_pages = [ "<html>y</html>" ];
                };
            };
          fault = Wire.Sleep_s 0.25;
        };
    ]
  in
  List.iter
    (fun message ->
      match roundtrip message with
      | `Msg (decoded, consumed) ->
        check_bool "roundtrip preserves the message" true (decoded = message);
        check_int "whole frame consumed" (String.length (Wire.encode message))
          consumed
      | `Need_more | `Error _ -> Alcotest.fail "roundtrip failed to decode")
    messages;
  (* Two frames back to back parse in order from the running offset. *)
  let stream = Wire.encode (Wire.Ping 1) ^ Wire.encode (Wire.Ping 2) in
  (match Wire.decode stream with
  | `Msg (Wire.Ping 1, next) -> (
    match Wire.decode ~off:next stream with
    | `Msg (Wire.Ping 2, final) ->
      check_int "stream fully consumed" (String.length stream) final
    | _ -> Alcotest.fail "second frame lost")
  | _ -> Alcotest.fail "first frame lost");
  (* A frame prefix is Need_more at every cut point, never an error. *)
  let frame = Wire.encode Wire.Shutdown in
  for cut = 0 to String.length frame - 1 do
    match Wire.decode (String.sub frame 0 cut) with
    | `Need_more -> ()
    | `Msg _ | `Error _ ->
      Alcotest.fail (Printf.sprintf "truncation at %d misparsed" cut)
  done

let test_wire_damage_typed () =
  let frame =
    Wire.encode
      (Wire.Hello { pid = 1; role = "reader"; jobs = 1; queue_capacity = 32 })
  in
  let flip frame pos =
    let bytes = Bytes.of_string frame in
    Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 0x40));
    Bytes.to_string bytes
  in
  (* A flipped payload byte fails the CRC. *)
  (match Wire.decode (flip frame (String.length frame - 1)) with
  | `Error Wire.Bad_crc -> ()
  | _ -> Alcotest.fail "payload damage must be Bad_crc");
  (* A flipped magic byte is Bad_magic. *)
  (match Wire.decode (flip frame 0) with
  | `Error Wire.Bad_magic -> ()
  | _ -> Alcotest.fail "magic damage must be Bad_magic");
  (* A version bump is typed with the claimed version. *)
  (match Wire.decode (flip frame 7) with
  | `Error (Wire.Bad_version v) ->
    check_bool "claimed version reported" true (v <> Wire.protocol_version)
  | _ -> Alcotest.fail "version skew must be Bad_version");
  (* Damage in the length field cannot make the decoder allocate wild:
     it reports an error or wants more bytes, it never throws. *)
  match Wire.decode (flip frame 13) with
  | `Error _ | `Need_more -> ()
  | `Msg _ -> Alcotest.fail "length damage decoded as a message"

(* A forged header claiming a ~2 GB payload must come back as the typed
   Frame_too_large error on both decode paths — incremental
   [decode_frame] and blocking [read_message] — before any payload
   allocation happens. *)
let forged_header claimed =
  let u32_be v =
    let b = Bytes.create 4 in
    Bytes.set b 0 (Char.chr ((v lsr 24) land 0xff));
    Bytes.set b 1 (Char.chr ((v lsr 16) land 0xff));
    Bytes.set b 2 (Char.chr ((v lsr 8) land 0xff));
    Bytes.set b 3 (Char.chr (v land 0xff));
    Bytes.to_string b
  in
  "TSGW" ^ u32_be Wire.protocol_version ^ u32_be 0 ^ u32_be claimed

let test_wire_forged_length () =
  let claimed = 2_000_000_000 in
  (* Incremental decoder: typed error carrying the claimed length. *)
  (match Wire.decode_frame (forged_header claimed) with
  | `Error (Wire.Frame_too_large len) ->
    check_int "claimed length reported" claimed len
  | `Error _ -> Alcotest.fail "wrong error for a forged length"
  | `Need_more -> Alcotest.fail "forged length must not ask for 2 GB more"
  | `Frame _ -> Alcotest.fail "forged length decoded as a frame");
  (* One past the cap refuses; the cap itself is still just Need_more. *)
  (match Wire.decode_frame (forged_header (Wire.max_payload + 1)) with
  | `Error (Wire.Frame_too_large _) -> ()
  | _ -> Alcotest.fail "max_payload + 1 must refuse");
  (match Wire.decode_frame (forged_header Wire.max_payload) with
  | `Need_more -> ()
  | _ -> Alcotest.fail "a frame at exactly max_payload is legal");
  (* Blocking reader: same typed error, again before allocating. *)
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      let header = forged_header claimed in
      let n = Unix.write_substring w header 0 (String.length header) in
      check_int "header fully written" (String.length header) n;
      match Wire.read_message r with
      | Error (`Decode (Wire.Frame_too_large len)) ->
        check_int "claimed length reported" claimed len
      | Ok _ -> Alcotest.fail "forged length read as a message"
      | Error _ -> Alcotest.fail "wrong error for a forged length")

(* ------------------------ byte-identity merge ----------------------- *)

let test_procs2_matches_sequential () =
  let requests = requests_of [ "ButlerCounty"; "AlleghenyCounty" ] in
  let expected = sequential_reference requests in
  let store_dir = temp_path () ^ ".tabstore" in
  Fun.protect ~finally:(fun () ->
      if Sys.file_exists store_dir then begin
        Array.iter
          (fun name -> Sys.remove (Filename.concat store_dir name))
          (Sys.readdir store_dir);
        Unix.rmdir store_dir
      end)
  @@ fun () ->
  with_gateway
    { Gateway.default_config with
      Gateway.procs = 2;
      service =
        { Service.default_config with Service.store_dir = Some store_dir }
    }
  @@ fun gateway ->
  (* Cold and warm rounds must both agree byte-for-byte. *)
  List.iter
    (fun round ->
      let responses = Gateway.run_batch gateway requests in
      check_int
        (Printf.sprintf "round %d: response count" round)
        (List.length requests) (List.length responses);
      List.iteri
        (fun i (response : Gateway.response) ->
          check_string
            (Printf.sprintf "round %d request %d" round i)
            (List.nth expected i)
            (render_response response);
          check_string "order preserved"
            (List.nth requests i).Service.id response.Gateway.id)
        responses)
    [ 1; 2 ];
  (* Over one shared store, exactly one worker won the writer lock. *)
  let roles = Gateway.worker_roles gateway in
  check_int "both workers alive" 2 (List.length roles);
  check_int "exactly one writer" 1
    (List.length (List.filter (fun (_, role) -> role = "writer") roles));
  check_int "the other is a reader" 1
    (List.length (List.filter (fun (_, role) -> role = "reader") roles))

(* --------------------- in-order merge under skew -------------------- *)

let test_inorder_merge_under_skew () =
  let requests = requests_of [ "ButlerCounty"; "AlleghenyCounty" ] in
  let expected = sequential_reference requests in
  (* Deterministic adversarial skew: each request sleeps a different
     amount derived from its id, so workers finish far out of
     submission order. *)
  let skew (request : Service.request) =
    Wire.Sleep_s (float_of_int (Hashtbl.hash request.Service.id mod 5) *. 0.02)
  in
  with_gateway { Gateway.default_config with Gateway.procs = 3 }
  @@ fun gateway ->
  let responses = Gateway.run_batch gateway ~fault:skew requests in
  check_int "every request answered" (List.length requests)
    (List.length responses);
  List.iteri
    (fun i (response : Gateway.response) ->
      check_string
        (Printf.sprintf "skewed request %d still in order" i)
        (List.nth requests i).Service.id response.Gateway.id;
      check_string
        (Printf.sprintf "skewed request %d byte-identical" i)
        (List.nth expected i) (render_response response))
    responses

(* ------------------------- crash supervision ------------------------ *)

let test_worker_crash_recovery () =
  let requests = requests_of [ "ButlerCounty" ] in
  let expected = sequential_reference requests in
  let marker = temp_path () ^ ".crash" in
  let oc = open_out marker in
  close_out oc;
  Fun.protect ~finally:(fun () ->
      if Sys.file_exists marker then Sys.remove marker)
  @@ fun () ->
  (* The marked request kills its worker mid-request; the marker is
     deleted by the dying worker, so the single re-dispatch to the
     restarted replacement must return the real result, not an error. *)
  let poison = (List.hd requests).Service.id in
  let fault (request : Service.request) =
    if request.Service.id = poison then Wire.Crash_if_exists marker
    else Wire.No_fault
  in
  with_gateway
    { Gateway.default_config with Gateway.procs = 2; backoff_s = 0.01 }
  @@ fun gateway ->
  let responses = Gateway.run_batch gateway ~fault requests in
  List.iteri
    (fun i (response : Gateway.response) ->
      check_string
        (Printf.sprintf "request %d correct after crash recovery" i)
        (List.nth expected i) (render_response response))
    responses;
  check_bool "the crash was supervised (restart counted)" true
    (counter_value gateway "gateway.worker_restarts" >= 1);
  check_bool "the request was re-dispatched exactly once" true
    (counter_value gateway "gateway.redispatches" >= 1);
  check_bool "marker consumed by the dying worker" true
    (not (Sys.file_exists marker));
  (* The fleet is healthy again afterwards. *)
  let healthy = Gateway.health gateway in
  check_int "both workers answer pings" 2
    (List.length (List.filter snd healthy))

let test_worker_lost_is_typed () =
  (* A directory marker cannot be deleted by the crashing worker, so
     every dispatch of the poisoned request kills a worker: after the
     one allowed re-dispatch the gateway must give up with a typed
     Worker_lost, never hang or crash the master. *)
  let marker = temp_path () ^ ".crashdir" in
  Unix.mkdir marker 0o700;
  Fun.protect ~finally:(fun () ->
      if Sys.file_exists marker then Unix.rmdir marker)
  @@ fun () ->
  let requests = [ List.hd (requests_of [ "ButlerCounty" ]) ] in
  let fault _ = Wire.Crash_if_exists marker in
  with_gateway
    { Gateway.default_config with
      Gateway.procs = 2;
      max_restarts = 2;
      backoff_s = 0.01
    }
  @@ fun gateway ->
  let responses = Gateway.run_batch gateway ~fault requests in
  match responses with
  | [ { Gateway.outcome = Error (Gateway.Worker_lost _); _ } ] -> ()
  | [ response ] ->
    Alcotest.fail
      ("expected Worker_lost, got " ^ render_response response)
  | _ -> Alcotest.fail "expected exactly one response"

let test_gateway_deadline () =
  let requests = [ List.hd (requests_of [ "ButlerCounty" ]) ] in
  with_gateway
    { Gateway.default_config with
      Gateway.procs = 2;
      deadline_s = Some 0.05
    }
  @@ fun gateway ->
  let responses =
    Gateway.run_batch gateway ~fault:(fun _ -> Wire.Sleep_s 0.5) requests
  in
  (match responses with
  | [ { Gateway.outcome = Error Gateway.Deadline_exceeded; _ } ] -> ()
  | _ -> Alcotest.fail "expected Deadline_exceeded");
  check_int "deadline counted" 1
    (counter_value gateway "gateway.deadline_exceeded")

(* ------------------------ degradation ladder ------------------------ *)

(* N copies of one site's first page: the worst case for static
   affinity — every request has the same home worker. The duplicates
   hit the worker's result cache after the first, so the injected
   sleeps dominate and the timing assertions are stable. *)
let hot_requests ~count =
  let base = List.hd (requests_of [ "ButlerCounty" ]) in
  List.init count (fun i ->
      { base with Service.id = Printf.sprintf "hot#%d" i })

let hot_reference () =
  match
    Tabseg.Api.segment_result ~method_:Tabseg.Api.Probabilistic
      (List.hd (hot_requests ~count:1)).Service.input
  with
  | Ok result -> render result.Tabseg.Api.segmentation
  | Error error -> "ERROR: " ^ Tabseg.Api.input_error_message error

let test_spill_on_vs_off () =
  let expected = hot_reference () in
  let timed config =
    with_gateway config @@ fun gateway ->
    (* Warm both workers' result caches first (with spill enabled the
       warmup pair lands on both workers; without it both copies stay
       home — where the timed batch runs too), so the timed comparison
       measures queueing, not cold segmentation. *)
    ignore (Gateway.run_batch gateway (hot_requests ~count:2));
    let requests = hot_requests ~count:10 in
    let started = Unix.gettimeofday () in
    let responses =
      Gateway.run_batch gateway
        ~fault:(fun _ -> Wire.Sleep_s 0.05)
        requests
    in
    let wall = Unix.gettimeofday () -. started in
    check_int "every hot request answered" (List.length requests)
      (List.length responses);
    List.iteri
      (fun i (response : Gateway.response) ->
        check_string
          (Printf.sprintf "hot request %d in submission order" i)
          (List.nth requests i).Service.id response.Gateway.id;
        check_string
          (Printf.sprintf "hot request %d byte-identical" i)
          expected (render_response response))
      responses;
    (wall, counter_value gateway "gateway.spilled")
  in
  let base = { Gateway.default_config with Gateway.procs = 2 } in
  let wall_affinity, spilled_affinity = timed base in
  let wall_spill, spilled_spill =
    timed { base with Gateway.spill_threshold = Some 0 }
  in
  check_int "strict affinity never spills" 0 spilled_affinity;
  check_bool "overloaded home worker spills" true (spilled_spill >= 4);
  (* A serial queue's wall clock is its tail latency: 10 sleeps behind
     one worker vs ~5 behind each of two leaves a wide margin. *)
  check_bool
    (Printf.sprintf "spill cuts the hot-site tail (%.3fs vs %.3fs)"
       wall_spill wall_affinity)
    true
    (wall_spill < wall_affinity *. 0.8)

let test_quota_hits_only_the_hot_site () =
  let hot = hot_requests ~count:8 in
  let cold =
    match requests_of [ "AlleghenyCounty" ] with
    | a :: b :: _ -> [ a; b ]
    | _ -> Alcotest.fail "AlleghenyCounty should have two pages"
  in
  with_gateway
    { Gateway.default_config with
      Gateway.procs = 2;
      site_quota_rps = Some 3.0
    }
  @@ fun gateway ->
  let responses = Gateway.run_batch gateway (hot @ cold) in
  let hot_responses = List.filteri (fun i _ -> i < 8) responses in
  let cold_responses = List.filteri (fun i _ -> i >= 8) responses in
  let admitted =
    List.length
      (List.filter
         (fun (r : Gateway.response) -> Result.is_ok r.Gateway.outcome)
         hot_responses)
  in
  check_int "the hot site's burst allowance is the quota" 3 admitted;
  List.iter
    (fun (response : Gateway.response) ->
      match response.Gateway.outcome with
      | Ok _ -> ()
      | Error (Gateway.Quota_exceeded { site; retry_after_s }) ->
        check_string "rejection names the hot site" "ButlerCounty" site;
        check_bool "retry hint is positive" true (retry_after_s > 0.)
      | Error other ->
        Alcotest.fail
          ("hot rejection must be Quota_exceeded, got "
          ^ Gateway.error_message other))
    hot_responses;
  List.iter
    (fun (response : Gateway.response) ->
      check_bool "cold site unaffected by the hot site's quota" true
        (Result.is_ok response.Gateway.outcome))
    cold_responses;
  check_int "quota rejections counted" 5
    (counter_value gateway "gateway.quota_rejected")

(* Same-tick rejections must not all name the same refill instant —
   otherwise every naive client sleeps the same hint and the herd
   re-arrives in lockstep for a single refilled token. Each rejection
   is promised its own refill slot, one interval (1/rate) apart. *)
let test_quota_hints_are_decorrelated () =
  with_gateway
    { Gateway.default_config with
      Gateway.procs = 1;
      site_quota_rps = Some 3.0
    }
  @@ fun gateway ->
  let responses = Gateway.run_batch gateway (hot_requests ~count:8) in
  let hints =
    List.filter_map
      (fun (response : Gateway.response) ->
        match response.Gateway.outcome with
        | Error (Gateway.Quota_exceeded { retry_after_s; _ }) ->
          Some retry_after_s
        | Ok _ | Error _ -> None)
      responses
  in
  check_int "burst exhaustion rejects five of eight" 5 (List.length hints);
  List.iter
    (fun hint -> check_bool "every hint is positive" true (hint > 0.))
    hints;
  let rec adjacent = function
    | earlier :: (later :: _ as rest) -> (earlier, later) :: adjacent rest
    | _ -> []
  in
  (* rate 3.0: consecutive promises sit ~0.333 s apart; anything above
     0.2 proves they are distinct instants, not one shared hint *)
  List.iteri
    (fun i (earlier, later) ->
      check_bool
        (Printf.sprintf "rejection %d hinted past rejection %d (%.3f vs %.3f)"
           (i + 2) (i + 1) later earlier)
        true
        (later -. earlier > 0.2))
    (adjacent hints)

let test_shed_vs_queue_under_impossible_deadline () =
  (* Batch 1 overcommits a worker: a few requests finish in time, the
     rest expire at the master but keep the worker busy (zombie work).
     Batch 2 arrives on top of that backlog with the same deadline.
     Without shedding it queues and burns the full deadline before
     failing; with shedding the EWMA model refuses it instantly and the
     worker's queue holds only winnable work. *)
  let run ~shed =
    with_gateway
      { Gateway.default_config with
        Gateway.procs = 2;
        deadline_s = Some 0.25;
        shed
      }
    @@ fun gateway ->
    let slow _ = Wire.Sleep_s 0.12 in
    ignore (Gateway.run_batch gateway ~fault:slow (hot_requests ~count:6));
    let responses =
      Gateway.run_batch gateway ~fault:slow (hot_requests ~count:6)
    in
    (responses, counter_value gateway "gateway.shed")
  in
  let queued, shed_count_off = run ~shed:false in
  check_int "shedding off never sheds" 0 shed_count_off;
  List.iter
    (fun (response : Gateway.response) ->
      check_bool "without shedding the backlogged batch burns its deadline"
        true
        (response.Gateway.outcome = Error Gateway.Deadline_exceeded))
    queued;
  let shed, shed_count_on = run ~shed:true in
  List.iter
    (fun (response : Gateway.response) ->
      match response.Gateway.outcome with
      | Error (Gateway.Shed { predicted_s; deadline_s }) ->
        check_bool "prediction exceeds the deadline" true
          (predicted_s > deadline_s)
      | _ ->
        Alcotest.fail
          ("expected a typed Shed, got " ^ render_response response))
    shed;
  check_int "every backlogged request was shed at admission" 6 shed_count_on

let test_ping_timeout_restarts_wedged_worker () =
  (* A worker stuck in a 5 s stall never closes its socket, so the
     EOF-based supervision alone would wait out the stall. The ping
     deadline must SIGKILL it, restart through the backoff path, and —
     when the replacement wedges on the re-dispatched request too —
     give up with the typed Worker_lost. *)
  let requests = hot_requests ~count:1 in
  with_gateway
    { Gateway.default_config with
      Gateway.procs = 2;
      ping_timeout_s = Some 0.15;
      max_restarts = 2;
      backoff_s = 0.01
    }
  @@ fun gateway ->
  let responses =
    Gateway.run_batch gateway ~fault:(fun _ -> Wire.Sleep_s 5.0) requests
  in
  (match responses with
  | [ { Gateway.outcome = Error (Gateway.Worker_lost _); _ } ] -> ()
  | [ response ] ->
    Alcotest.fail ("expected Worker_lost, got " ^ render_response response)
  | _ -> Alcotest.fail "expected exactly one response");
  check_bool "ping timeouts counted" true
    (counter_value gateway "gateway.ping_timeouts" >= 1);
  check_bool "the wedged worker went through the restart path" true
    (counter_value gateway "gateway.worker_restarts" >= 1)

(* ----------------------------- streaming ---------------------------- *)

let stream_one gateway (request : Service.request) =
  (* One streaming submission pumped to completion; returns the final
     response plus the streamed records in arrival order. *)
  let records = ref [] in
  let result = ref None in
  Gateway.submit_stream gateway
    ~on_record:(fun index record -> records := (index, record) :: !records)
    ~on_complete:(fun response -> result := Some response)
    request;
  let rec wait () =
    match !result with
    | Some response -> response
    | None ->
      Gateway.pump ~max_wait_s:0.05 gateway;
      wait ()
  in
  let response = wait () in
  (response, List.rev !records)

let check_stream_against expected (response, streamed) =
  check_string "final stream response byte-identical" expected
    (render_response response);
  match response.Gateway.outcome with
  | Error error -> Alcotest.fail ("stream errored: " ^ Gateway.error_message error)
  | Ok result ->
    let batch_records = result.Tabseg.Api.segmentation.Tabseg.Segmentation.records in
    check_int "streamed every record exactly once"
      (List.length batch_records) (List.length streamed);
    List.iteri
      (fun i (index, record) ->
        check_int "frame indexes are 0..n-1 in order" i index;
        check_bool "streamed record equals its batch twin" true
          (record = List.nth batch_records i))
      streamed

let test_stream_matches_batch_forked () =
  (* Every record a procs=2 stream emits must be the batch record, in
     emission order, with the terminal response byte-identical to the
     sequential reference — streaming is a delivery schedule, not a
     different computation. *)
  let requests = requests_of [ "AmazonBooks"; "AlleghenyCounty" ] in
  let expected = sequential_reference requests in
  with_gateway { Gateway.default_config with Gateway.procs = 2 }
  @@ fun gateway ->
  List.iteri
    (fun i request ->
      check_stream_against (List.nth expected i) (stream_one gateway request))
    requests;
  check_bool "stream submissions counted" true
    (counter_value gateway "gateway.stream.requests" >= List.length requests)

let test_stream_matches_batch_inline () =
  (* procs=1 takes the inline Service.segment_stream path — same
     contract, no fork. *)
  let requests = requests_of [ "BNBooks" ] in
  let expected = sequential_reference requests in
  with_gateway { Gateway.default_config with Gateway.procs = 1 }
  @@ fun gateway ->
  List.iteri
    (fun i request ->
      check_stream_against (List.nth expected i) (stream_one gateway request))
    requests

(* ----------------------------- draining ----------------------------- *)

let test_sigterm_drains () =
  (* Hot-site duplicates with a zero spill threshold: the batch that is
     in flight when SIGTERM lands includes spilled requests, so the
     drain guarantee is exercised across both placement paths. *)
  let requests = hot_requests ~count:6 in
  with_gateway
    { Gateway.default_config with
      Gateway.procs = 2;
      spill_threshold = Some 0
    }
  @@ fun gateway ->
  Gateway.install_sigterm gateway;
  Fun.protect ~finally:(fun () ->
      Sys.set_signal Sys.sigterm Sys.Signal_default)
  @@ fun () ->
  (* SIGTERM lands mid-batch (the sleeps keep the batch in flight);
     the in-flight work must still complete — drain, not abort. *)
  let killer =
    Domain.spawn (fun () ->
        Unix.sleepf 0.05;
        Unix.kill (Unix.getpid ()) Sys.sigterm)
  in
  let responses =
    Gateway.run_batch gateway ~fault:(fun _ -> Wire.Sleep_s 0.15) requests
  in
  Domain.join killer;
  check_int "in-flight batch completed through the drain"
    (List.length requests) (List.length responses);
  List.iter
    (fun (response : Gateway.response) ->
      check_bool "drained request answered, not errored" true
        (Result.is_ok response.Gateway.outcome))
    responses;
  check_bool "gateway is draining" true (Gateway.draining gateway);
  check_bool "spilled requests were in flight during the drain" true
    (counter_value gateway "gateway.spilled" >= 1);
  (* New work is refused with the typed drain error. *)
  match Gateway.run_batch gateway requests with
  | [] -> Alcotest.fail "expected responses"
  | refused ->
    List.iter
      (fun (response : Gateway.response) ->
        check_bool "refused with Draining" true
          (response.Gateway.outcome = Error Gateway.Draining))
      refused

let () =
  Alcotest.run "gateway"
    [
      ( "wire",
        [
          Alcotest.test_case "frame roundtrip + stream + truncation" `Quick
            test_wire_roundtrip;
          Alcotest.test_case "forged 2 GB length header is refused" `Quick
            test_wire_forged_length;
          Alcotest.test_case "damage decodes as typed errors" `Quick
            test_wire_damage_typed;
        ] );
      ( "merge",
        [
          Alcotest.test_case "procs=2 byte-identical to sequential" `Slow
            test_procs2_matches_sequential;
          Alcotest.test_case "in-order under latency skew" `Slow
            test_inorder_merge_under_skew;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "crash mid-request recovers via re-dispatch"
            `Slow test_worker_crash_recovery;
          Alcotest.test_case "permanent crash is typed Worker_lost" `Slow
            test_worker_lost_is_typed;
          Alcotest.test_case "deadline expiry at the master" `Quick
            test_gateway_deadline;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "spill cuts the hot-site tail, bytes identical"
            `Slow test_spill_on_vs_off;
          Alcotest.test_case "quota rejection is typed and site-scoped" `Slow
            test_quota_hits_only_the_hot_site;
          Alcotest.test_case "same-tick quota hints are de-correlated" `Quick
            test_quota_hints_are_decorrelated;
          Alcotest.test_case "shed-vs-queue under an impossible deadline"
            `Slow test_shed_vs_queue_under_impossible_deadline;
          Alcotest.test_case "ping timeout restarts a wedged worker" `Slow
            test_ping_timeout_restarts_wedged_worker;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "forked stream: records = batch, in order"
            `Slow test_stream_matches_batch_forked;
          Alcotest.test_case "inline stream: records = batch, in order"
            `Quick test_stream_matches_batch_inline;
        ] );
      (* Last on purpose: the killer Domain.spawn below must come after
         every fork in this process (fork-after-domain hazard). *)
      ( "draining",
        [
          Alcotest.test_case "SIGTERM drains in-flight work" `Quick
            test_sigterm_drains;
        ] );
    ]
