(* The multi-process gateway: wire-frame integrity (roundtrip, CRC
   damage, version skew as typed decode errors), byte-identity of the
   procs=2 merge against the sequential reference, in-order merge under
   adversarial per-worker latency skew, worker-crash recovery via a
   single re-dispatch, permanent worker loss as a typed error, deadline
   expiry at the master, and SIGTERM drain semantics. *)

open Tabseg_serve
open Tabseg_gateway
open Tabseg_sitegen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let render segmentation =
  Format.asprintf "%a" Tabseg.Segmentation.pp segmentation

let render_response (response : Gateway.response) =
  match response.Gateway.outcome with
  | Ok result -> render result.Tabseg.Api.segmentation
  | Error error -> "ERROR: " ^ Gateway.error_message error

let requests_of site_names =
  List.concat_map
    (fun name ->
      let site = Sites.find name in
      let generated = Sites.generate site in
      List.mapi
        (fun page_index _ ->
          let list_pages, detail_pages =
            Sites.segmentation_input generated ~page_index
          in
          {
            Service.id = Printf.sprintf "%s#%d" name page_index;
            site = name;
            input = { Tabseg.Pipeline.list_pages; detail_pages };
          })
        generated.Sites.pages)
    site_names

let sequential_reference requests =
  List.map
    (fun (request : Service.request) ->
      match
        Tabseg.Api.segment_result ~method_:Tabseg.Api.Probabilistic
          request.Service.input
      with
      | Ok result -> render result.Tabseg.Api.segmentation
      | Error error -> "ERROR: " ^ Tabseg.Api.input_error_message error)
    requests

let with_gateway config f =
  let gateway = Gateway.create ~config () in
  Fun.protect ~finally:(fun () -> Gateway.shutdown gateway) (fun () ->
      f gateway)

let temp_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tabseg_gw_%d_%d" (Unix.getpid ()) !counter)

let counter_value gateway name =
  Metrics.counter_value (Metrics.counter (Gateway.metrics gateway) name)

(* ------------------------------ wire -------------------------------- *)

let roundtrip message = Wire.decode (Wire.encode message)

let test_wire_roundtrip () =
  let messages =
    [
      Wire.Hello { pid = 4242; role = "writer" };
      Wire.Ping 7;
      Wire.Pong 7;
      Wire.Shutdown;
      Wire.Request
        {
          seq = 12;
          request =
            {
              Service.id = "r12";
              site = "example";
              input =
                {
                  Tabseg.Pipeline.list_pages = [ "<html>x</html>" ];
                  detail_pages = [ "<html>y</html>" ];
                };
            };
          fault = Wire.Sleep_s 0.25;
        };
    ]
  in
  List.iter
    (fun message ->
      match roundtrip message with
      | `Msg (decoded, consumed) ->
        check_bool "roundtrip preserves the message" true (decoded = message);
        check_int "whole frame consumed" (String.length (Wire.encode message))
          consumed
      | `Need_more | `Error _ -> Alcotest.fail "roundtrip failed to decode")
    messages;
  (* Two frames back to back parse in order from the running offset. *)
  let stream = Wire.encode (Wire.Ping 1) ^ Wire.encode (Wire.Ping 2) in
  (match Wire.decode stream with
  | `Msg (Wire.Ping 1, next) -> (
    match Wire.decode ~off:next stream with
    | `Msg (Wire.Ping 2, final) ->
      check_int "stream fully consumed" (String.length stream) final
    | _ -> Alcotest.fail "second frame lost")
  | _ -> Alcotest.fail "first frame lost");
  (* A frame prefix is Need_more at every cut point, never an error. *)
  let frame = Wire.encode Wire.Shutdown in
  for cut = 0 to String.length frame - 1 do
    match Wire.decode (String.sub frame 0 cut) with
    | `Need_more -> ()
    | `Msg _ | `Error _ ->
      Alcotest.fail (Printf.sprintf "truncation at %d misparsed" cut)
  done

let test_wire_damage_typed () =
  let frame = Wire.encode (Wire.Hello { pid = 1; role = "reader" }) in
  let flip frame pos =
    let bytes = Bytes.of_string frame in
    Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 0x40));
    Bytes.to_string bytes
  in
  (* A flipped payload byte fails the CRC. *)
  (match Wire.decode (flip frame (String.length frame - 1)) with
  | `Error Wire.Bad_crc -> ()
  | _ -> Alcotest.fail "payload damage must be Bad_crc");
  (* A flipped magic byte is Bad_magic. *)
  (match Wire.decode (flip frame 0) with
  | `Error Wire.Bad_magic -> ()
  | _ -> Alcotest.fail "magic damage must be Bad_magic");
  (* A version bump is typed with the claimed version. *)
  (match Wire.decode (flip frame 7) with
  | `Error (Wire.Bad_version v) ->
    check_bool "claimed version reported" true (v <> Wire.protocol_version)
  | _ -> Alcotest.fail "version skew must be Bad_version");
  (* Damage in the length field cannot make the decoder allocate wild:
     it reports an error or wants more bytes, it never throws. *)
  match Wire.decode (flip frame 13) with
  | `Error _ | `Need_more -> ()
  | `Msg _ -> Alcotest.fail "length damage decoded as a message"

(* ------------------------ byte-identity merge ----------------------- *)

let test_procs2_matches_sequential () =
  let requests = requests_of [ "ButlerCounty"; "AlleghenyCounty" ] in
  let expected = sequential_reference requests in
  let store_dir = temp_path () ^ ".tabstore" in
  Fun.protect ~finally:(fun () ->
      if Sys.file_exists store_dir then begin
        Array.iter
          (fun name -> Sys.remove (Filename.concat store_dir name))
          (Sys.readdir store_dir);
        Unix.rmdir store_dir
      end)
  @@ fun () ->
  with_gateway
    { Gateway.default_config with
      Gateway.procs = 2;
      service =
        { Service.default_config with Service.store_dir = Some store_dir }
    }
  @@ fun gateway ->
  (* Cold and warm rounds must both agree byte-for-byte. *)
  List.iter
    (fun round ->
      let responses = Gateway.run_batch gateway requests in
      check_int
        (Printf.sprintf "round %d: response count" round)
        (List.length requests) (List.length responses);
      List.iteri
        (fun i (response : Gateway.response) ->
          check_string
            (Printf.sprintf "round %d request %d" round i)
            (List.nth expected i)
            (render_response response);
          check_string "order preserved"
            (List.nth requests i).Service.id response.Gateway.id)
        responses)
    [ 1; 2 ];
  (* Over one shared store, exactly one worker won the writer lock. *)
  let roles = Gateway.worker_roles gateway in
  check_int "both workers alive" 2 (List.length roles);
  check_int "exactly one writer" 1
    (List.length (List.filter (fun (_, role) -> role = "writer") roles));
  check_int "the other is a reader" 1
    (List.length (List.filter (fun (_, role) -> role = "reader") roles))

(* --------------------- in-order merge under skew -------------------- *)

let test_inorder_merge_under_skew () =
  let requests = requests_of [ "ButlerCounty"; "AlleghenyCounty" ] in
  let expected = sequential_reference requests in
  (* Deterministic adversarial skew: each request sleeps a different
     amount derived from its id, so workers finish far out of
     submission order. *)
  let skew (request : Service.request) =
    Wire.Sleep_s (float_of_int (Hashtbl.hash request.Service.id mod 5) *. 0.02)
  in
  with_gateway { Gateway.default_config with Gateway.procs = 3 }
  @@ fun gateway ->
  let responses = Gateway.run_batch gateway ~fault:skew requests in
  check_int "every request answered" (List.length requests)
    (List.length responses);
  List.iteri
    (fun i (response : Gateway.response) ->
      check_string
        (Printf.sprintf "skewed request %d still in order" i)
        (List.nth requests i).Service.id response.Gateway.id;
      check_string
        (Printf.sprintf "skewed request %d byte-identical" i)
        (List.nth expected i) (render_response response))
    responses

(* ------------------------- crash supervision ------------------------ *)

let test_worker_crash_recovery () =
  let requests = requests_of [ "ButlerCounty" ] in
  let expected = sequential_reference requests in
  let marker = temp_path () ^ ".crash" in
  let oc = open_out marker in
  close_out oc;
  Fun.protect ~finally:(fun () ->
      if Sys.file_exists marker then Sys.remove marker)
  @@ fun () ->
  (* The marked request kills its worker mid-request; the marker is
     deleted by the dying worker, so the single re-dispatch to the
     restarted replacement must return the real result, not an error. *)
  let poison = (List.hd requests).Service.id in
  let fault (request : Service.request) =
    if request.Service.id = poison then Wire.Crash_if_exists marker
    else Wire.No_fault
  in
  with_gateway
    { Gateway.default_config with Gateway.procs = 2; backoff_s = 0.01 }
  @@ fun gateway ->
  let responses = Gateway.run_batch gateway ~fault requests in
  List.iteri
    (fun i (response : Gateway.response) ->
      check_string
        (Printf.sprintf "request %d correct after crash recovery" i)
        (List.nth expected i) (render_response response))
    responses;
  check_bool "the crash was supervised (restart counted)" true
    (counter_value gateway "gateway.worker_restarts" >= 1);
  check_bool "the request was re-dispatched exactly once" true
    (counter_value gateway "gateway.redispatches" >= 1);
  check_bool "marker consumed by the dying worker" true
    (not (Sys.file_exists marker));
  (* The fleet is healthy again afterwards. *)
  let healthy = Gateway.health gateway in
  check_int "both workers answer pings" 2
    (List.length (List.filter snd healthy))

let test_worker_lost_is_typed () =
  (* A directory marker cannot be deleted by the crashing worker, so
     every dispatch of the poisoned request kills a worker: after the
     one allowed re-dispatch the gateway must give up with a typed
     Worker_lost, never hang or crash the master. *)
  let marker = temp_path () ^ ".crashdir" in
  Unix.mkdir marker 0o700;
  Fun.protect ~finally:(fun () ->
      if Sys.file_exists marker then Unix.rmdir marker)
  @@ fun () ->
  let requests = [ List.hd (requests_of [ "ButlerCounty" ]) ] in
  let fault _ = Wire.Crash_if_exists marker in
  with_gateway
    { Gateway.default_config with
      Gateway.procs = 2;
      max_restarts = 2;
      backoff_s = 0.01
    }
  @@ fun gateway ->
  let responses = Gateway.run_batch gateway ~fault requests in
  match responses with
  | [ { Gateway.outcome = Error (Gateway.Worker_lost _); _ } ] -> ()
  | [ response ] ->
    Alcotest.fail
      ("expected Worker_lost, got " ^ render_response response)
  | _ -> Alcotest.fail "expected exactly one response"

let test_gateway_deadline () =
  let requests = [ List.hd (requests_of [ "ButlerCounty" ]) ] in
  with_gateway
    { Gateway.default_config with
      Gateway.procs = 2;
      deadline_s = Some 0.05
    }
  @@ fun gateway ->
  let responses =
    Gateway.run_batch gateway ~fault:(fun _ -> Wire.Sleep_s 0.5) requests
  in
  (match responses with
  | [ { Gateway.outcome = Error Gateway.Deadline_exceeded; _ } ] -> ()
  | _ -> Alcotest.fail "expected Deadline_exceeded");
  check_int "deadline counted" 1
    (counter_value gateway "gateway.deadline_exceeded")

(* ----------------------------- draining ----------------------------- *)

let test_sigterm_drains () =
  let requests = requests_of [ "ButlerCounty" ] in
  with_gateway { Gateway.default_config with Gateway.procs = 2 }
  @@ fun gateway ->
  Gateway.install_sigterm gateway;
  Fun.protect ~finally:(fun () ->
      Sys.set_signal Sys.sigterm Sys.Signal_default)
  @@ fun () ->
  (* SIGTERM lands mid-batch (the sleeps keep the batch in flight);
     the in-flight work must still complete — drain, not abort. *)
  let killer =
    Domain.spawn (fun () ->
        Unix.sleepf 0.05;
        Unix.kill (Unix.getpid ()) Sys.sigterm)
  in
  let responses =
    Gateway.run_batch gateway ~fault:(fun _ -> Wire.Sleep_s 0.15) requests
  in
  Domain.join killer;
  check_int "in-flight batch completed through the drain"
    (List.length requests) (List.length responses);
  List.iter
    (fun (response : Gateway.response) ->
      check_bool "drained request answered, not errored" true
        (Result.is_ok response.Gateway.outcome))
    responses;
  check_bool "gateway is draining" true (Gateway.draining gateway);
  (* New work is refused with the typed drain error. *)
  match Gateway.run_batch gateway requests with
  | [] -> Alcotest.fail "expected responses"
  | refused ->
    List.iter
      (fun (response : Gateway.response) ->
        check_bool "refused with Draining" true
          (response.Gateway.outcome = Error Gateway.Draining))
      refused

let () =
  Alcotest.run "gateway"
    [
      ( "wire",
        [
          Alcotest.test_case "frame roundtrip + stream + truncation" `Quick
            test_wire_roundtrip;
          Alcotest.test_case "damage decodes as typed errors" `Quick
            test_wire_damage_typed;
        ] );
      ( "merge",
        [
          Alcotest.test_case "procs=2 byte-identical to sequential" `Slow
            test_procs2_matches_sequential;
          Alcotest.test_case "in-order under latency skew" `Slow
            test_inorder_merge_under_skew;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "crash mid-request recovers via re-dispatch"
            `Slow test_worker_crash_recovery;
          Alcotest.test_case "permanent crash is typed Worker_lost" `Slow
            test_worker_lost_is_typed;
          Alcotest.test_case "deadline expiry at the master" `Quick
            test_gateway_deadline;
        ] );
      ( "draining",
        [
          Alcotest.test_case "SIGTERM drains in-flight work" `Quick
            test_sigterm_drains;
        ] );
    ]
