(* The persistent store: log roundtrips across reopen, crash recovery
   (torn tail, flipped byte), the single-writer lock, reader refresh,
   capacity-budgeted compaction, the versioned codec, the cache's L2
   tier, and the end-to-end warm-start guarantee of a restarted
   service. *)

open Tabseg_sitegen
module Store = Tabseg_store.Store
module Codec = Tabseg_store.Codec
module Serve = Tabseg_serve

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let path =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "tabseg_test_%d_%d.tabstore" (Unix.getpid ()) !counter)
    in
    if not (Sys.file_exists path) then Unix.mkdir path 0o700;
    path

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun name -> Sys.remove (Filename.concat dir name))
      (Sys.readdir dir);
    Unix.rmdir dir
  end

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let segment_file dir = Filename.concat dir "current.seg"

let read_file path =
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  contents

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* ------------------------------- log -------------------------------- *)

let test_put_get_roundtrip () =
  with_dir @@ fun dir ->
  let store = Store.open_store dir in
  let blobs =
    [
      ("plain", "hello");
      ("empty", "");
      (* values embedding the store's own framing bytes must not
         confuse recovery or reads *)
      ("framing", "TSRC\x00\x00\x00\x01TABSTORE");
      ("binary", String.init 4096 (fun i -> Char.chr (i * 7 land 0xff)));
    ]
  in
  List.iter
    (fun (key, value) -> check_bool ("put " ^ key) true (Store.put store ~key value))
    blobs;
  List.iter
    (fun (key, value) ->
      match Store.get store key with
      | Some read -> check_string ("get " ^ key) value read
      | None -> Alcotest.failf "lost %s before reopen" key)
    blobs;
  check_int "length" (List.length blobs) (Store.length store);
  check_bool "missing key" false (Store.mem store "absent");
  Store.close store;
  (* reopen: the index is rebuilt purely from the log *)
  let store = Store.open_store dir in
  List.iter
    (fun (key, value) ->
      match Store.get store key with
      | Some read -> check_string ("reopened get " ^ key) value read
      | None -> Alcotest.failf "lost %s across reopen" key)
    blobs;
  check_int "reopened length" (List.length blobs) (Store.length store);
  Store.close store

let test_reput_is_noop () =
  with_dir @@ fun dir ->
  let store = Store.open_store dir in
  check_bool "first put" true (Store.put store ~key:"k" "value");
  let appended = (Store.stats store).Store.appended_bytes in
  check_bool "re-put accepted" true (Store.put store ~key:"k" "value");
  check_int "no bytes appended by re-put" appended
    (Store.stats store).Store.appended_bytes;
  Store.close store

let test_oversize_put_refused () =
  with_dir @@ fun dir ->
  let store =
    Store.open_store
      ~config:{ Store.default_config with Store.capacity_mb = 1 }
      dir
  in
  check_bool "oversize refused" false
    (Store.put store ~key:"big" (String.make (2 * 1024 * 1024) 'x'));
  check_int "rejected counted" 1 (Store.stats store).Store.put_rejected;
  check_bool "normal put still fine" true (Store.put store ~key:"ok" "v");
  Store.close store

let test_not_a_store () =
  with_dir @@ fun dir ->
  write_file (segment_file dir) "<html>this is no segment log</html>";
  (match Store.open_store dir with
  | exception Store.Not_a_store _ -> ()
  | store ->
    Store.close store;
    Alcotest.fail "opened a foreign file as a store");
  (* and the foreign file was not clobbered *)
  check_string "file untouched" "<html>this is no segment log</html>"
    (read_file (segment_file dir))

(* ----------------------------- recovery ----------------------------- *)

let populate dir entries =
  let store = Store.open_store dir in
  List.iter (fun (key, value) -> ignore (Store.put store ~key value)) entries;
  Store.close store

let test_torn_tail_truncated () =
  with_dir @@ fun dir ->
  populate dir
    [ ("first", String.make 100 'a'); ("second", String.make 100 'b');
      ("third", String.make 100 'c') ];
  (* a crashed writer: the last record is half on disk *)
  let size = (Unix.stat (segment_file dir)).Unix.st_size in
  let fd = Unix.openfile (segment_file dir) [ Unix.O_RDWR ] 0o644 in
  Unix.ftruncate fd (size - 60);
  Unix.close fd;
  let store = Store.open_store dir in
  check_bool "first survives" true (Store.get store "first" = Some (String.make 100 'a'));
  check_bool "second survives" true (Store.mem store "second");
  check_bool "torn third dropped" false (Store.mem store "third");
  check_int "exactly the tail's entries lost" 2 (Store.length store);
  check_bool "tail bytes accounted" true
    ((Store.stats store).Store.truncated_bytes > 0);
  (* the truncated log must accept appends again *)
  check_bool "append after recovery" true (Store.put store ~key:"fourth" "d");
  Store.close store;
  let store = Store.open_store dir in
  check_int "clean after recovery + append" 3 (Store.length store);
  check_bool "no further truncation" true
    ((Store.stats store).Store.truncated_bytes = 0);
  Store.close store

let test_bit_flip_drops_one_entry () =
  with_dir @@ fun dir ->
  let marker = String.make 200 'B' in
  populate dir
    [ ("first", String.make 200 'A'); ("second", marker);
      ("third", String.make 200 'C') ];
  (* flip one byte inside the middle record's value *)
  let contents = read_file (segment_file dir) in
  let rec find i =
    if String.sub contents i (String.length marker) = marker then i
    else find (i + 1)
  in
  let at = find 0 + 100 in
  let flipped =
    String.mapi
      (fun i c -> if i = at then Char.chr (Char.code c lxor 0x40) else c)
      contents
  in
  write_file (segment_file dir) flipped;
  let store = Store.open_store dir in
  check_bool "entry before damage survives" true
    (Store.get store "first" = Some (String.make 200 'A'));
  check_bool "damaged entry dropped" false (Store.mem store "second");
  check_bool "entry after damage survives" true
    (Store.get store "third" = Some (String.make 200 'C'));
  check_int "exactly one entry lost" 2 (Store.length store);
  check_bool "damage counted" true
    ((Store.stats store).Store.corrupt_dropped > 0);
  (* compaction rewrites only intact entries; the garbage is gone *)
  Store.compact store;
  Store.close store;
  let store = Store.open_store dir in
  check_int "compacted store intact" 2 (Store.length store);
  check_int "no damage left after compaction" 0
    (Store.stats store).Store.corrupt_dropped;
  Store.close store

(* ------------------------- lock and sharing ------------------------- *)

let test_single_writer () =
  with_dir @@ fun dir ->
  let writer = Store.open_store dir in
  check_bool "first handle writes" true (Store.role writer = Store.Writer);
  let second = Store.open_store dir in
  check_bool "second handle degrades to reader" true
    (Store.role second = Store.Reader);
  check_bool "reader put queues instead of writing" false
    (Store.put second ~key:"k" "v");
  check_int "queued, not dropped" 1 (Store.stats second).Store.offload_queued;
  check_int "no outright drop" 0 (Store.stats second).Store.put_rejected;
  Store.close second;
  (* with offload off, a reader's put is a counted hard drop *)
  let no_offload =
    Store.open_store
      ~config:{ Store.default_config with Store.offload = false }
      dir
  in
  check_bool "offload off: put refused" false
    (Store.put no_offload ~key:"k2" "v");
  check_int "refusal counted" 1 (Store.stats no_offload).Store.put_rejected;
  check_int "nothing queued" 0 (Store.stats no_offload).Store.offload_queued;
  Store.close no_offload;
  Store.close writer;
  (* the lock dies with its holder *)
  let reopened = Store.open_store dir in
  check_bool "lock released on close" true (Store.role reopened = Store.Writer);
  Store.close reopened;
  let readonly = Store.open_store ~readonly:true dir in
  check_bool "explicit readonly" true (Store.role readonly = Store.Reader);
  Store.close readonly

let test_reader_refresh_sees_appends () =
  with_dir @@ fun dir ->
  let writer = Store.open_store dir in
  ignore (Store.put writer ~key:"before" "1");
  let reader = Store.open_store dir in
  check_bool "reader sees existing entry" true (Store.mem reader "before");
  ignore (Store.put writer ~key:"after" "2");
  check_bool "append invisible before refresh" false (Store.mem reader "after");
  Store.refresh reader;
  check_bool "refresh picks up the append" true
    (Store.get reader "after" = Some "2");
  (* a compaction swaps the segment file under the reader *)
  Store.compact writer;
  ignore (Store.put writer ~key:"post-compact" "3");
  Store.refresh reader;
  check_bool "refresh follows the segment swap" true
    (Store.get reader "post-compact" = Some "3");
  check_bool "old entries survive the swap" true (Store.mem reader "before");
  Store.close reader;
  Store.close writer

let test_reader_offload_folds () =
  with_dir @@ fun dir ->
  let queues () =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun name ->
           String.length name >= 8 && String.sub name 0 8 = "offload-")
  in
  let writer = Store.open_store dir in
  ignore (Store.put writer ~key:"w" "1");
  let reader = Store.open_store dir in
  check_bool "reader put queues, not visible yet" false
    (Store.put reader ~key:"q" "2");
  check_int "queued counted" 1 (Store.stats reader).Store.offload_queued;
  check_int "one offload queue on disk" 1 (List.length (queues ()));
  check_bool "writer does not see it before folding" false
    (Store.mem writer "q");
  (* the writer's refresh tick folds the queue into the log… *)
  Store.refresh writer;
  check_bool "folded into the writer's log" true
    (Store.get writer "q" = Some "2");
  check_int "fold counted" 1 (Store.stats writer).Store.offload_folded;
  check_int "queue unlinked after fold" 0 (List.length (queues ()));
  (* …and the reader picks its own put back up like any other append. *)
  check_bool "still invisible to the reader" false (Store.mem reader "q");
  Store.refresh reader;
  check_bool "reader sees its put after fold + refresh" true
    (Store.get reader "q" = Some "2");
  (* A later put starts a fresh queue (the old file was claimed by
     rename); that queue survives both closes and is folded when the
     next writer opens the store. *)
  check_bool "second reader put queues" false (Store.put reader ~key:"r" "3");
  check_int "fresh queue on disk" 1 (List.length (queues ()));
  Store.close reader;
  Store.close writer;
  let reopened = Store.open_store dir in
  check_bool "fold on open" true (Store.get reopened "r" = Some "3");
  check_int "fold on open counted" 1
    (Store.stats reopened).Store.offload_folded;
  check_int "no queues left behind" 0 (List.length (queues ()));
  check_bool "earlier entries intact" true
    (Store.mem reopened "w" && Store.mem reopened "q");
  Store.close reopened

(* ---------------------------- compaction ---------------------------- *)

let test_compaction_bounds_and_evicts_oldest () =
  with_dir @@ fun dir ->
  let capacity_mb = 1 in
  let store =
    Store.open_store
      ~config:{ Store.default_config with Store.capacity_mb }
      dir
  in
  let value = String.make (64 * 1024) 'v' in
  for i = 1 to 40 do
    ignore (Store.put store ~key:(Printf.sprintf "key-%02d" i) value)
  done;
  let s = Store.stats store in
  check_bool "compactions happened" true (s.Store.compactions > 0);
  check_bool "log stays within budget" true
    (s.Store.file_bytes <= capacity_mb * 1024 * 1024);
  check_bool "newest entry survives" true (Store.mem store "key-40");
  check_bool "oldest entry evicted" false (Store.mem store "key-01");
  Store.close store;
  (* the compacted segment is a valid store *)
  let store = Store.open_store dir in
  check_bool "reopen after compactions" true
    (Store.get store "key-40" = Some value);
  Store.close store

(* ------------------------------ codec ------------------------------- *)

let superpages_input () =
  let generated = Sites.generate (Sites.find "SuperPages") in
  let list_pages, detail_pages =
    Sites.segmentation_input generated ~page_index:0
  in
  { Tabseg.Pipeline.list_pages; detail_pages }

let induced_template () =
  let input = superpages_input () in
  Tabseg_template.Template.induce
    (List.map Tabseg_token.Tokenizer.tokenize input.Tabseg.Pipeline.list_pages)

let render_result (result : Tabseg.Api.result) =
  Format.asprintf "%a" Tabseg.Segmentation.pp result.Tabseg.Api.segmentation

let test_codec_template_roundtrip () =
  let template = induced_template () in
  match Codec.decode_template (Codec.encode_template template) with
  | None -> Alcotest.fail "template failed to roundtrip"
  | Some decoded ->
    Alcotest.(check (list string))
      "template keys survive"
      (Tabseg_template.Template.keys template)
      (Tabseg_template.Template.keys decoded)

let test_codec_result_roundtrip () =
  let result =
    Tabseg.Api.segment ~method_:Tabseg.Api.Probabilistic (superpages_input ())
  in
  match Codec.decode_result (Codec.encode_result result) with
  | None -> Alcotest.fail "result failed to roundtrip"
  | Some decoded ->
    check_string "segmentation renders identically" (render_result result)
      (render_result decoded)

let test_codec_rejects_damage () =
  let blob = Codec.encode_template (induced_template ()) in
  let flip at s =
    String.mapi
      (fun i c -> if i = at then Char.chr (Char.code c lxor 1) else c)
      s
  in
  check_bool "tampered payload is a miss" true
    (Codec.decode_template (flip (String.length blob - 1) blob) = None);
  check_bool "tampered digest is a miss" true
    (Codec.decode_template (flip 10 blob) = None);
  check_bool "version skew is a miss" true
    (Codec.decode_template (flip 5 blob) = None);
  check_bool "kind confusion is a miss" true
    (Codec.decode_result blob = None);
  check_bool "truncation is a miss" true
    (Codec.decode_template (String.sub blob 0 (String.length blob / 2)) = None);
  check_bool "empty blob is a miss" true (Codec.decode_template "" = None)

(* ------------------------- the cache L2 tier ------------------------- *)

let test_cache_l2_promotion () =
  with_dir @@ fun dir ->
  let input = superpages_input () in
  let key = Tabseg.Pipeline.page_set_key input.Tabseg.Pipeline.list_pages in
  let template = induced_template () in
  (* first process: write-through *)
  let store = Store.open_store dir in
  let cache = Serve.Cache.create ~store () in
  let hook = Serve.Cache.template_cache cache in
  hook.Tabseg.Pipeline.store_template ~key template;
  Store.close store;
  (* "restarted" process: empty L1, warm store *)
  let store = Store.open_store dir in
  let cache = Serve.Cache.create ~store () in
  let hook = Serve.Cache.template_cache cache in
  (match hook.Tabseg.Pipeline.find_template ~key with
  | None -> Alcotest.fail "restart lost the template"
  | Some found ->
    Alcotest.(check (list string))
      "hydrated template identical"
      (Tabseg_template.Template.keys template)
      (Tabseg_template.Template.keys found));
  let stats = Serve.Cache.stats cache in
  (match stats.Serve.Cache.persist with
  | None -> Alcotest.fail "no persist stats"
  | Some p -> check_int "one L2 template hit" 1 p.Serve.Cache.template_hits);
  (* promoted into L1: the next lookup does not touch the store *)
  let gets_before =
    match (Serve.Cache.stats cache).Serve.Cache.persist with
    | Some p -> p.Serve.Cache.store.Store.gets
    | None -> 0
  in
  ignore (hook.Tabseg.Pipeline.find_template ~key);
  let gets_after =
    match (Serve.Cache.stats cache).Serve.Cache.persist with
    | Some p -> p.Serve.Cache.store.Store.gets
    | None -> 0
  in
  check_int "second lookup served from L1" gets_before gets_after;
  Store.close store

let test_cache_treats_garbage_as_miss () =
  with_dir @@ fun dir ->
  let store = Store.open_store dir in
  ignore (Store.put store ~key:"T:somekey" "not a codec blob at all");
  let cache = Serve.Cache.create ~store () in
  let hook = Serve.Cache.template_cache cache in
  check_bool "undecodable blob is a miss" true
    (hook.Tabseg.Pipeline.find_template ~key:"somekey" = None);
  Store.close store

(* ----------------------- service warm start ------------------------- *)

let site_requests name =
  let site = Sites.find name in
  let generated = Sites.generate site in
  List.mapi
    (fun page_index _ ->
      let list_pages, detail_pages =
        Sites.segmentation_input generated ~page_index
      in
      {
        Serve.Service.id = Printf.sprintf "%s#%d" name page_index;
        site = name;
        input = { Tabseg.Pipeline.list_pages; detail_pages };
      })
    generated.Sites.pages

let render_responses responses =
  List.map
    (fun (response : Serve.Service.response) ->
      match response.Serve.Service.outcome with
      | Ok result -> render_result result
      | Error error -> "ERROR: " ^ Serve.Service.error_message error)
    responses

let run_service ?jobs:(jobs = 1) ~store_dir requests =
  let config =
    {
      Serve.Service.default_config with
      Serve.Service.jobs;
      store_dir = Some store_dir;
    }
  in
  let service = Serve.Service.create ~config () in
  Fun.protect ~finally:(fun () -> Serve.Service.shutdown service)
  @@ fun () ->
  let responses = Serve.Service.run_batch service requests in
  let persist =
    match Serve.Service.cache_stats service with
    | Some { Serve.Cache.persist = Some p; _ } -> Some p
    | _ -> None
  in
  (render_responses responses, responses, persist)

let test_service_warm_start () =
  with_dir @@ fun dir ->
  let requests = site_requests "ButlerCounty" in
  let cold, _, _ = run_service ~store_dir:dir requests in
  (* restart: fresh process state, same store directory *)
  let warm, responses, persist = run_service ~store_dir:dir requests in
  Alcotest.(check (list string))
    "warm restart byte-identical to the cold run" cold warm;
  List.iter
    (fun (r : Serve.Service.response) ->
      check_bool ("hit " ^ r.Serve.Service.id) true r.Serve.Service.cache_hit)
    responses;
  match persist with
  | None -> Alcotest.fail "no persistent tier"
  | Some p ->
    check_int "every request served from the store"
      (List.length requests) p.Serve.Cache.result_hits

let test_concurrent_services_share_store () =
  with_dir @@ fun dir ->
  let requests = site_requests "ButlerCounty" in
  (* two live services on one directory: the first owns the writer
     lock, the second degrades to reader — and both serve correctly *)
  let config =
    { Serve.Service.default_config with Serve.Service.store_dir = Some dir }
  in
  let a = Serve.Service.create ~config () in
  let b = Serve.Service.create ~config () in
  Fun.protect
    ~finally:(fun () ->
      Serve.Service.shutdown b;
      Serve.Service.shutdown a)
  @@ fun () ->
  (match (Serve.Service.store_stats a, Serve.Service.store_stats b) with
  | Some sa, Some sb ->
    check_bool "first service writes" true (sa.Store.role = Store.Writer);
    check_bool "second service reads" true (sb.Store.role = Store.Reader)
  | _ -> Alcotest.fail "missing store stats");
  let ra = render_responses (Serve.Service.run_batch a requests) in
  let rb = render_responses (Serve.Service.run_batch b requests) in
  Alcotest.(check (list string)) "both services agree" ra rb;
  (* the store was not corrupted by the concurrent use *)
  let probe = Store.open_store ~readonly:true dir in
  check_bool "store opens cleanly" true (Store.length probe > 0);
  check_int "no damage recorded" 0 (Store.stats probe).Store.corrupt_dropped;
  Store.close probe

let () =
  Alcotest.run "store"
    [
      ( "log",
        [
          Alcotest.test_case "put/get roundtrip across reopen" `Quick
            test_put_get_roundtrip;
          Alcotest.test_case "re-put of existing key is a no-op" `Quick
            test_reput_is_noop;
          Alcotest.test_case "oversize put refused" `Quick
            test_oversize_put_refused;
          Alcotest.test_case "foreign file refused, not clobbered" `Quick
            test_not_a_store;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "torn tail truncated on open" `Quick
            test_torn_tail_truncated;
          Alcotest.test_case "flipped byte drops exactly one entry" `Quick
            test_bit_flip_drops_one_entry;
        ] );
      ( "sharing",
        [
          Alcotest.test_case "single writer, readers degrade" `Quick
            test_single_writer;
          Alcotest.test_case "reader refresh sees appends and swaps" `Quick
            test_reader_refresh_sees_appends;
          Alcotest.test_case "reader offload queue folds into the log" `Quick
            test_reader_offload_folds;
        ] );
      ( "compaction",
        [
          Alcotest.test_case "bounded log, oldest evicted" `Quick
            test_compaction_bounds_and_evicts_oldest;
        ] );
      ( "codec",
        [
          Alcotest.test_case "template roundtrip" `Quick
            test_codec_template_roundtrip;
          Alcotest.test_case "result roundtrip" `Quick
            test_codec_result_roundtrip;
          Alcotest.test_case "damage, skew and confusion are misses" `Quick
            test_codec_rejects_damage;
        ] );
      ( "cache",
        [
          Alcotest.test_case "L2 hit promotes into L1" `Quick
            test_cache_l2_promotion;
          Alcotest.test_case "garbage blob is a miss" `Quick
            test_cache_treats_garbage_as_miss;
        ] );
      ( "service",
        [
          Alcotest.test_case "warm start: 100% store hits, identical" `Quick
            test_service_warm_start;
          Alcotest.test_case "two services share one store safely" `Quick
            test_concurrent_services_share_store;
        ] );
    ]
