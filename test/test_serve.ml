(* The serving layer: parallel-vs-sequential determinism, cache
   correctness (a hit returns exactly what the cold miss computed), LRU
   eviction under a tiny budget, typed overload rejection and deadline
   expiry instead of blocking, and monotone metrics. *)

open Tabseg_serve
open Tabseg_sitegen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let render segmentation =
  Format.asprintf "%a" Tabseg.Segmentation.pp segmentation

let render_response (response : Service.response) =
  match response.Service.outcome with
  | Ok result -> render result.Tabseg.Api.segmentation
  | Error error -> "ERROR: " ^ Service.error_message error

(* Every page of [sites] as one service request; [reseed] shifts each
   site's generator seed so "across seeds" means genuinely different
   page content. *)
let requests_of ?(reseed = 0) site_names =
  List.concat_map
    (fun name ->
      let site = Sites.find name in
      let site = { site with Sites.seed = site.Sites.seed + reseed } in
      let generated = Sites.generate site in
      List.mapi
        (fun page_index _ ->
          let list_pages, detail_pages =
            Sites.segmentation_input generated ~page_index
          in
          {
            Service.id = Printf.sprintf "%s#%d" name page_index;
            site = name;
            input = { Tabseg.Pipeline.list_pages; detail_pages };
          })
        generated.Sites.pages)
    site_names

let sequential_reference ~method_ requests =
  List.map
    (fun (request : Service.request) ->
      match
        Tabseg.Api.segment_result ~method_ request.Service.input
      with
      | Ok result -> render result.Tabseg.Api.segmentation
      | Error error -> "ERROR: " ^ Tabseg.Api.input_error_message error)
    requests

(* ------------------- determinism under parallelism ------------------ *)

let test_parallel_matches_sequential () =
  List.iter
    (fun reseed ->
      let requests =
        requests_of ~reseed [ "ButlerCounty"; "AlleghenyCounty"; "Canada411" ]
      in
      let expected =
        sequential_reference ~method_:Tabseg.Api.Probabilistic requests
      in
      let service =
        Service.create
          ~config:{ Service.default_config with Service.jobs = 3 }
          ()
      in
      Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
      (* Two rounds: the warm round must agree byte-for-byte too. *)
      List.iter
        (fun round ->
          let responses = Service.run_batch service requests in
          check_int
            (Printf.sprintf "reseed %d round %d: response count" reseed round)
            (List.length requests) (List.length responses);
          List.iteri
            (fun i (response : Service.response) ->
              check_string
                (Printf.sprintf "reseed %d round %d request %d" reseed round i)
                (List.nth expected i)
                (render_response response);
              check_string "response order preserved"
                (List.nth requests i).Service.id response.Service.id)
            responses)
        [ 1; 2 ])
    [ 0; 17 ]

let test_parallel_matches_sequential_csp () =
  let requests = requests_of [ "ButlerCounty"; "OhioCorrections" ] in
  let expected = sequential_reference ~method_:Tabseg.Api.Csp requests in
  let service =
    Service.create
      ~config:
        { Service.default_config with
          Service.jobs = 2; method_ = Tabseg.Api.Csp }
      ()
  in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  let responses = Service.run_batch service requests in
  List.iteri
    (fun i response ->
      check_string (Printf.sprintf "csp request %d" i) (List.nth expected i)
        (render_response response))
    responses

(* --------------------------- cache behavior ------------------------- *)

let test_cache_hit_identical () =
  let requests = requests_of [ "ButlerCounty" ] in
  let service = Service.create () in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  let cold = Service.run_batch service requests in
  let after_cold =
    match Service.cache_stats service with
    | None -> Alcotest.fail "cache should be enabled by default"
    | Some stats -> stats
  in
  let warm = Service.run_batch service requests in
  List.iter
    (fun (response : Service.response) ->
      check_bool "cold round misses" false response.Service.cache_hit)
    cold;
  List.iter2
    (fun (c : Service.response) (w : Service.response) ->
      check_bool "warm round hits" true w.Service.cache_hit;
      check_string "hit equals cold miss" (render_response c)
        (render_response w))
    cold warm;
  match Service.cache_stats service with
  | None -> Alcotest.fail "cache should be enabled by default"
  | Some stats ->
    check_bool "result memo hits recorded" true
      (stats.Cache.results.Shard.hits >= List.length requests);
    (* The acceptance bar is about the warm round alone: compare against
       the snapshot taken after the cold round. *)
    let warm_hits =
      stats.Cache.results.Shard.hits - after_cold.Cache.results.Shard.hits
    and warm_misses =
      stats.Cache.results.Shard.misses
      - after_cold.Cache.results.Shard.misses
    in
    check_bool "warm hit rate above 80%" true
      (float_of_int warm_hits
       /. float_of_int (max 1 (warm_hits + warm_misses))
      > 0.8)

let test_template_cache_shared () =
  (* Same-site requests repeated: after the first, template induction
     must be served from the template cache. *)
  let requests = requests_of [ "AlleghenyCounty" ] in
  let service = Service.create () in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  ignore (Service.run_batch service requests);
  ignore (Service.run_batch service requests);
  match Service.cache_stats service with
  | None -> Alcotest.fail "cache should be enabled by default"
  | Some stats ->
    check_bool "templates were cached" true
      (stats.Cache.templates.Shard.entries > 0);
    check_int "no template eviction in a 64MB budget" 0
      stats.Cache.templates.Shard.evictions

let test_lru_eviction () =
  let shard = Shard.create ~shards:1 ~capacity:3 ~cost:(fun _ -> 1) () in
  Shard.store shard "a" "A";
  Shard.store shard "b" "B";
  Shard.store shard "c" "C";
  (* Refresh "a" so "b" is the least recently used. *)
  check_bool "a present" true (Shard.find shard "a" = Some "A");
  Shard.store shard "d" "D";
  let stats = Shard.stats shard in
  check_int "one eviction" 1 stats.Shard.evictions;
  check_int "three live entries" 3 stats.Shard.entries;
  check_bool "b evicted" true (Shard.find shard "b" = None);
  check_bool "a survived" true (Shard.find shard "a" = Some "A");
  check_bool "c survived" true (Shard.find shard "c" = Some "C");
  check_bool "d stored" true (Shard.find shard "d" = Some "D")

let test_oversize_value_not_cached () =
  let shard = Shard.create ~shards:1 ~capacity:4 ~cost:String.length () in
  Shard.store shard "big" "xxxxxxxxxx";
  check_bool "oversize value skipped" true (Shard.find shard "big" = None);
  check_int "nothing evicted for it" 0 (Shard.stats shard).Shard.evictions

(* --------------------- overload and deadlines ----------------------- *)

(* A gate the test controls: worker tasks block on it until [open_gate],
   so queue occupancy is deterministic. *)
let make_gate () =
  let mutex = Mutex.create () in
  let opened = Condition.create () in
  let is_open = ref false in
  let started = Atomic.make 0 in
  let wait () =
    Atomic.incr started;
    Mutex.lock mutex;
    while not !is_open do
      Condition.wait opened mutex
    done;
    Mutex.unlock mutex
  in
  let open_gate () =
    Mutex.lock mutex;
    is_open := true;
    Condition.broadcast opened;
    Mutex.unlock mutex
  in
  let running () = Atomic.get started in
  (wait, open_gate, running)

let spin_until ?(timeout_s = 5.) condition =
  let started = Unix.gettimeofday () in
  while (not (condition ())) && Unix.gettimeofday () -. started < timeout_s do
    Domain.cpu_relax ()
  done;
  condition ()

let test_pool_overload_rejects () =
  let pool = Pool.create ~queue_capacity:1 ~jobs:2 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let wait, open_gate, running = make_gate () in
  (* The gate must open no matter which assertion fails, or [shutdown]
     would join a worker still blocked on it. *)
  Fun.protect ~finally:open_gate @@ fun () ->
  (* Saturate the workers one at a time: submitting both back-to-back
     can bounce the second off the 1-slot queue before a worker wakes. *)
  let blocker1 = Pool.submit pool (fun () -> wait (); "blocked") in
  check_bool "first worker busy" true (spin_until (fun () -> running () = 1));
  let blocker2 = Pool.submit pool (fun () -> wait (); "blocked") in
  check_bool "both workers busy" true (spin_until (fun () -> running () = 2));
  let queued = Pool.submit pool (fun () -> "queued") in
  let shed = Pool.submit pool (fun () -> "shed") in
  check_bool "queue full => immediate typed rejection" true
    (match Pool.await shed with
    | Pool.Rejected { depth; capacity } -> depth = 1 && capacity = 1
    | _ -> false);
  open_gate ();
  check_bool "queued task still ran" true (Pool.await queued = Pool.Done "queued");
  check_bool "blockers completed" true
    (Pool.await blocker1 = Pool.Done "blocked"
    && Pool.await blocker2 = Pool.Done "blocked");
  let stats = Pool.stats pool in
  check_int "one rejection counted" 1 stats.Pool.rejected;
  check_int "three completions counted" 3 stats.Pool.completed

let test_service_overload_typed_error () =
  (* queue_capacity 0: nothing can ever be handed to the workers, so
     every batch group is shed with the typed error — and the caller is
     never blocked. *)
  let service =
    Service.create
      ~config:
        { Service.default_config with
          Service.jobs = 2; queue_capacity = Some 0 }
      ()
  in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  let requests = requests_of [ "ButlerCounty"; "AlleghenyCounty" ] in
  let responses = Service.run_batch service requests in
  check_int "every request answered" (List.length requests)
    (List.length responses);
  List.iter
    (fun (response : Service.response) ->
      check_bool "typed overload error" true
        (match response.Service.outcome with
        | Error (Service.Overloaded { capacity = 0; _ }) -> true
        | _ -> false))
    responses;
  check_bool "rejections counted" true
    ((Service.pool_stats service).Pool.rejected >= 2)

let test_deadline_expiry () =
  let pool = Pool.create ~queue_capacity:4 ~jobs:2 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let wait, open_gate, running = make_gate () in
  Fun.protect ~finally:open_gate @@ fun () ->
  let _b1 = Pool.submit pool (fun () -> wait ()) in
  check_bool "first worker busy" true (spin_until (fun () -> running () = 1));
  let _b2 = Pool.submit pool (fun () -> wait ()) in
  check_bool "both workers busy" true (spin_until (fun () -> running () = 2));
  let doomed = Pool.submit pool ~deadline_s:0.005 (fun () -> "ran") in
  Unix.sleepf 0.02;
  open_gate ();
  check_bool "queued past its deadline => Expired" true
    (Pool.await doomed = Pool.Expired);
  check_int "expiry counted" 1 (Pool.stats pool).Pool.expired

(* ----------------------------- metrics ------------------------------ *)

let test_metrics_counters_monotone () =
  let registry = Metrics.create () in
  let c = Metrics.counter registry "events" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  check_int "counter accumulates" 5 (Metrics.counter_value c);
  check_bool "negative increments rejected" true
    (match Metrics.incr ~by:(-1) c with
    | exception Invalid_argument _ -> true
    | () -> false);
  check_int "value unchanged after rejected incr" 5 (Metrics.counter_value c);
  (* Same name => same metric. *)
  Metrics.incr (Metrics.counter registry "events");
  check_int "interned by name" 6 (Metrics.counter_value c)

let test_metrics_histogram_percentiles () =
  let registry = Metrics.create () in
  let h = Metrics.histogram registry "latency" in
  List.iter (Metrics.observe h) [ 0.001; 0.002; 0.004; 0.008; 0.1 ];
  let s = Metrics.summary h in
  check_int "count" 5 s.Metrics.count;
  check_bool "min <= p50 <= p95 <= p99 <= max" true
    (s.Metrics.min <= s.Metrics.p50
    && s.Metrics.p50 <= s.Metrics.p95
    && s.Metrics.p95 <= s.Metrics.p99
    && s.Metrics.p99 <= s.Metrics.max);
  check_bool "p50 in the right decade" true
    (s.Metrics.p50 >= 0.001 && s.Metrics.p50 <= 0.01)

let test_service_metrics_flow () =
  let requests = requests_of [ "ButlerCounty" ] in
  let service = Service.create () in
  Fun.protect ~finally:(fun () -> Service.shutdown service) @@ fun () ->
  let registry = Service.metrics service in
  let total = Metrics.counter registry "requests.total" in
  ignore (Service.run_batch service requests);
  let after_one = Metrics.counter_value total in
  check_bool "requests counted" true (after_one >= List.length requests);
  ignore (Service.run_batch service requests);
  check_bool "counter is monotone across batches" true
    (Metrics.counter_value total >= after_one + List.length requests);
  let latency = Metrics.summary (Metrics.histogram registry "request.seconds") in
  check_bool "latencies observed" true
    (latency.Metrics.count >= 2 * List.length requests);
  (* Stage events crossed the instrumentation bridge. *)
  let stage =
    Metrics.summary (Metrics.histogram registry "stage.pipeline.template")
  in
  check_bool "template stage timed" true (stage.Metrics.count > 0);
  let json = Metrics.to_json registry in
  let contains haystack needle =
    let h = String.length haystack and n = String.length needle in
    let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
    at 0
  in
  check_bool "json dump mentions the counters" true
    (contains json {|"requests.total"|})

(* A minimal RFC 8259 string-literal parser: enough to prove that what
   [Metrics.json_string] emits decodes back to the original bytes. *)
let json_unescape literal =
  let n = String.length literal in
  if n < 2 || literal.[0] <> '"' || literal.[n - 1] <> '"' then
    Alcotest.failf "not a JSON string literal: %s" literal;
  let buf = Buffer.create n in
  let rec go i =
    if i < n - 1 then
      match literal.[i] with
      | '\\' -> (
        match literal.[i + 1] with
        | '"' -> Buffer.add_char buf '"'; go (i + 2)
        | '\\' -> Buffer.add_char buf '\\'; go (i + 2)
        | '/' -> Buffer.add_char buf '/'; go (i + 2)
        | 'b' -> Buffer.add_char buf '\b'; go (i + 2)
        | 't' -> Buffer.add_char buf '\t'; go (i + 2)
        | 'n' -> Buffer.add_char buf '\n'; go (i + 2)
        | 'f' -> Buffer.add_char buf '\012'; go (i + 2)
        | 'r' -> Buffer.add_char buf '\r'; go (i + 2)
        | 'u' ->
          let code = int_of_string ("0x" ^ String.sub literal (i + 2) 4) in
          if code > 0xff then Alcotest.fail "non-latin escape unexpected here";
          Buffer.add_char buf (Char.chr code);
          go (i + 6)
        | c -> Alcotest.failf "bad escape \\%c" c)
      | c -> Buffer.add_char buf c; go (i + 1)
  in
  go 1;
  Buffer.contents buf

let test_json_string_hostile_label () =
  (* Every byte class the encoder must defuse: the quote, the
     backslash, named control escapes, arbitrary control bytes
     (including NUL and 0x1f at the boundary), DEL, and multi-byte
     UTF-8 (which must pass through untouched). *)
  let hostile =
    "ev\"il\\label\nwith\tctrl\x00\x01\x1f\x7f\band\r\012caf\xc3\xa9"
  in
  let literal = Metrics.json_string hostile in
  check_string "escaping round-trips" hostile (json_unescape literal);
  (* No raw control bytes and no unescaped quotes may survive inside
     the literal — that is what breaks JSON consumers. *)
  String.iteri
    (fun i c ->
      check_bool
        (Printf.sprintf "byte %d is JSON-clean" i)
        false
        (Char.code c < 0x20
        || (c = '"' && i > 0 && i < String.length literal - 1
            && literal.[i - 1] <> '\\')))
    literal;
  (* And the whole registry dump stays parseable-shaped with such a
     label embedded: the hostile name appears exactly in its escaped
     form. *)
  let registry = Metrics.create () in
  Metrics.incr (Metrics.counter registry hostile);
  let json = Metrics.to_json registry in
  let contains haystack needle =
    let h = String.length haystack and n = String.length needle in
    let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
    at 0
  in
  check_bool "to_json embeds the escaped label" true (contains json literal);
  check_bool "to_json has no raw newline from the label" true
    (not (contains json "il\\label\n"))

let () =
  Alcotest.run "serve"
    [
      ( "determinism",
        [
          Alcotest.test_case "parallel = sequential (prob, 2 seeds)" `Slow
            test_parallel_matches_sequential;
          Alcotest.test_case "parallel = sequential (csp)" `Slow
            test_parallel_matches_sequential_csp;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit identical to cold miss" `Quick
            test_cache_hit_identical;
          Alcotest.test_case "templates shared across requests" `Quick
            test_template_cache_shared;
          Alcotest.test_case "LRU eviction under tiny budget" `Quick
            test_lru_eviction;
          Alcotest.test_case "oversize values skipped" `Quick
            test_oversize_value_not_cached;
        ] );
      ( "overload",
        [
          Alcotest.test_case "pool sheds when queue full" `Quick
            test_pool_overload_rejects;
          Alcotest.test_case "service returns typed Overloaded" `Quick
            test_service_overload_typed_error;
          Alcotest.test_case "deadline expiry" `Quick test_deadline_expiry;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters monotone" `Quick
            test_metrics_counters_monotone;
          Alcotest.test_case "histogram percentiles ordered" `Quick
            test_metrics_histogram_percentiles;
          Alcotest.test_case "service threads metrics" `Quick
            test_service_metrics_flow;
          Alcotest.test_case "hostile label survives json escaping" `Quick
            test_json_string_hostile_label;
        ] );
    ]
