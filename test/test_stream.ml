(* tabseg.stream: the streaming engine's contract. Byte-identity — the
   stream is a different *schedule* for the same computation, so folding
   the event stream must reproduce Api.segment_result exactly, on the
   twelve built-in sites and on corpus sites, for both methods.
   Incrementality — records of early units are emitted before later pages
   are even pulled from the source. Bounded memory — a 10^5-row corpus
   site streams under a fixed live-token and live-word budget. *)

open Tabseg_stream
module Api = Tabseg.Api
module Pipeline = Tabseg.Pipeline
module Sites = Tabseg_sitegen.Sites
module Family = Tabseg_corpus.Family

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let batch_digest ~method_ input =
  Runner.outcome_digest (Api.segment_result ~method_ input)

let stream_config ~method_ =
  { Engine.default_config with Engine.method_ }

(* ------------------------- built-in sites ---------------------------- *)

(* Every page of every built-in site, both methods: the single-unit stream
   (Service's seam) ends with the batch outcome, byte for byte, and the
   records it emitted along the way are the outcome's records. *)
let test_builtin_sites_identical () =
  List.iter
    (fun site ->
      let generated = Sites.generate site in
      List.iteri
        (fun page_index _ ->
          let list_pages, detail_pages =
            Sites.segmentation_input generated ~page_index
          in
          let input = { Pipeline.list_pages; detail_pages } in
          List.iter
            (fun method_ ->
              let streamed = ref [] in
              let outcome, _summary =
                Runner.stream_input
                  ~config:(stream_config ~method_)
                  ~on_record:(fun record -> streamed := record :: !streamed)
                  input
              in
              let label =
                Printf.sprintf "%s p%d (%s)" site.Sites.name page_index
                  (Api.method_name method_)
              in
              check_string label
                (batch_digest ~method_ input)
                (Runner.outcome_digest outcome);
              match outcome with
              | Ok result ->
                check_bool (label ^ ": streamed records = result records")
                  true
                  (List.rev !streamed
                  = result.Api.segmentation.Tabseg.Segmentation.records)
              | Error _ -> check_int (label ^ ": no records") 0
                             (List.length !streamed))
            [ Api.Csp; Api.Probabilistic ])
        generated.Sites.pages)
    Sites.all

(* --------------------------- corpus sites ---------------------------- *)

let corpus_specs ~sites ~seed ~max_rows =
  Family.sample
    {
      Family.default_params with
      Family.sites;
      seed;
      max_rows;
      max_rows_per_page = 10;
    }

(* Single-unit streams over a corpus sample, both methods. *)
let test_corpus_sample_identical () =
  let specs = corpus_specs ~sites:24 ~seed:91 ~max_rows:600 in
  List.iter
    (fun spec ->
      let generated = Family.generate ~max_pages:3 spec in
      let list_pages, detail_pages =
        Family.segmentation_input generated ~page_index:0 ~max_siblings:2
      in
      let input = { Pipeline.list_pages; detail_pages } in
      List.iter
        (fun method_ ->
          let outcome, _ =
            Runner.stream_input
              ~config:(stream_config ~method_)
              ~on_record:(fun _ -> ())
              input
          in
          check_string
            (Printf.sprintf "%s (%s)" spec.Family.sp_name
               (Api.method_name method_))
            (batch_digest ~method_ input)
            (Runner.outcome_digest outcome))
        [ Api.Csp; Api.Probabilistic ])
    specs

(* Multi-unit site streams: every list page is a unit; the engine's folded
   outcomes equal the batch reference over each unit's derived input, and
   events respect stream order. *)
let site_pages spec ~units =
  let generated = Family.generate ~max_pages:units spec in
  List.concat_map
    (fun (page : Family.page) ->
      Source.List_page { html = page.Family.list_html; segment = true }
      :: List.map
           (fun html -> Source.Detail_page html)
           page.Family.detail_htmls)
    generated.Family.pages

let test_multi_unit_identical () =
  let specs = corpus_specs ~sites:6 ~seed:17 ~max_rows:900 in
  List.iter
    (fun spec ->
      let pages = site_pages spec ~units:5 in
      List.iter
        (fun method_ ->
          let config =
            { (stream_config ~method_) with Engine.head_window = 3 }
          in
          let unit_done = ref [] in
          let records_of = Hashtbl.create 8 in
          let on_event = function
            | Frame.Unit_done { unit_index; _ } ->
              unit_done := unit_index :: !unit_done
            | Frame.Record { unit_index; record } ->
              check_bool "records precede their unit's Unit_done" false
                (List.mem unit_index !unit_done);
              Hashtbl.replace records_of unit_index
                (record
                :: Option.value ~default:[]
                     (Hashtbl.find_opt records_of unit_index))
            | Frame.Template_refined _ -> ()
          in
          let folded = Runner.fold ~config ~on_event (Source.of_pages pages) in
          let reference = Runner.batch_reference ~config pages in
          let label =
            Printf.sprintf "%s (%s)" spec.Family.sp_name
              (Api.method_name method_)
          in
          check_int (label ^ ": unit count") (List.length reference)
            (List.length folded.Runner.outcomes);
          List.iteri
            (fun i (streamed, batch) ->
              check_string
                (Printf.sprintf "%s: unit %d" label i)
                (Runner.outcome_digest batch)
                (Runner.outcome_digest streamed))
            (List.combine folded.Runner.outcomes reference);
          check_bool (label ^ ": units close in stream order") true
            (List.rev !unit_done
            = List.init (List.length !unit_done) Fun.id);
          List.iteri
            (fun i outcome ->
              match outcome with
              | Ok result ->
                let streamed =
                  List.rev
                    (Option.value ~default:[]
                       (Hashtbl.find_opt records_of i))
                in
                check_bool
                  (Printf.sprintf "%s: unit %d records" label i)
                  true
                  (streamed
                  = result.Api.segmentation.Tabseg.Segmentation.records)
              | Error _ -> ())
            folded.Runner.outcomes)
        [ Api.Csp; Api.Probabilistic ])
    specs

(* ------------------------- incrementality ---------------------------- *)

(* The first record must be emitted before the source is exhausted: the
   engine closes unit 0 as soon as the head seals and its details end,
   while later units' pages are still unpulled. *)
let test_first_record_before_source_exhausted () =
  let spec =
    {
      (List.hd (corpus_specs ~sites:1 ~seed:23 ~max_rows:2_000)) with
      Family.sp_rows = 200;
      sp_rows_per_page = 10;
    }
  in
  let pages = site_pages spec ~units:8 in
  let total = List.length pages in
  let pulled = ref 0 in
  let base = Source.of_pages pages in
  let source () =
    incr pulled;
    base ()
  in
  let pulled_at_first = ref None in
  let config =
    { Engine.default_config with Engine.head_window = 3 }
  in
  let on_event = function
    | Frame.Record _ when !pulled_at_first = None ->
      pulled_at_first := Some !pulled
    | _ -> ()
  in
  let summary = Runner.run ~config ~on_event source in
  check_bool "stream produced records" true (summary.Frame.records > 0);
  match !pulled_at_first with
  | None -> Alcotest.fail "no record event"
  | Some pulled ->
    check_bool
      (Printf.sprintf "first record after %d of %d pages" pulled total)
      true
      (pulled < total / 2)

(* Template refinement narrows monotonically as head pages arrive. *)
let test_refine_monotone () =
  let spec = List.hd (corpus_specs ~sites:1 ~seed:31 ~max_rows:2_000) in
  let pages = site_pages spec ~units:6 in
  let sizes = ref [] in
  let config = { Engine.default_config with Engine.head_window = 6 } in
  let on_event = function
    | Frame.Template_refined progress ->
      sizes := progress.Frame.template_size :: !sizes
    | _ -> ()
  in
  let _ = Runner.run ~config ~on_event (Source.of_pages pages) in
  let sizes = List.rev !sizes in
  check_bool "refinement events seen" true (List.length sizes >= 2);
  let rec monotone = function
    | a :: (b :: _ as rest) -> a >= b && monotone rest
    | [ _ ] | [] -> true
  in
  check_bool "estimate narrows monotonically" true (monotone sizes)

(* ------------------------- bounded memory ---------------------------- *)

(* Stream a 10^5-row site's units from a lazy source: the engine's live
   tokens and the process's live words stay bounded, and the streamed
   outcomes still match the batch reference. *)
let test_bounded_memory_huge_site () =
  let spec =
    {
      (List.hd (corpus_specs ~sites:1 ~seed:47 ~max_rows:4_000)) with
      Family.sp_name = "huge";
      sp_rows = 100_000;
      sp_rows_per_page = 25;
    }
  in
  let units = 10 in
  let lazy_source ~on_page =
    let next = Family.page_source ~max_pages:units spec in
    let queue = Queue.create () in
    fun () ->
      if not (Queue.is_empty queue) then Some (Queue.pop queue)
      else begin
        match next () with
        | None -> None
        | Some page ->
          on_page ();
          Queue.add
            (Source.List_page
               { html = page.Family.list_html; segment = true })
            queue;
          List.iter
            (fun html -> Queue.add (Source.Detail_page html) queue)
            page.Family.detail_htmls;
          Some (Queue.pop queue)
      end
  in
  let config = { Engine.default_config with Engine.head_window = 3 } in
  Gc.compact ();
  let baseline = (Gc.stat ()).Gc.live_words in
  let live_hwm = ref 0 in
  let sample () =
    live_hwm := max !live_hwm ((Gc.stat ()).Gc.live_words - baseline)
  in
  let folded =
    Runner.fold ~config
      ~on_event:(function Frame.Unit_done _ -> sample () | _ -> ())
      (lazy_source ~on_page:ignore)
  in
  check_int "all units closed" units (List.length folded.Runner.outcomes);
  (* Fixed budgets: the whole site is ~4000 pages; holding ~5 pages of
     tokens must stay orders of magnitude below materializing it. *)
  let token_hwm = folded.Runner.summary.Frame.live_tokens_hwm in
  check_bool
    (Printf.sprintf "live tokens bounded (hwm %d)" token_hwm)
    true (token_hwm < 200_000);
  check_bool
    (Printf.sprintf "live words bounded (hwm %d over baseline)" !live_hwm)
    true
    (!live_hwm < 16_000_000);
  (* Identity against the batch reference over the same derived inputs. *)
  let pages =
    let collected = ref [] in
    let source = lazy_source ~on_page:ignore in
    let rec drain () =
      match source () with
      | None -> List.rev !collected
      | Some page ->
        collected := page :: !collected;
        drain ()
    in
    drain ()
  in
  let reference = Runner.batch_reference ~config pages in
  List.iteri
    (fun i (streamed, batch) ->
      check_string
        (Printf.sprintf "unit %d identical" i)
        (Runner.outcome_digest batch)
        (Runner.outcome_digest streamed))
    (List.combine folded.Runner.outcomes reference)

(* The hard cap is really hard. *)
let test_budget_cap_enforced () =
  let spec = List.hd (corpus_specs ~sites:1 ~seed:59 ~max_rows:2_000) in
  let pages = site_pages spec ~units:4 in
  let config =
    {
      Engine.default_config with
      Engine.head_window = 3;
      max_live_tokens = Some 50;
    }
  in
  match Runner.run ~config ~on_event:ignore (Source.of_pages pages) with
  | _ -> Alcotest.fail "expected Budget.Exceeded"
  | exception Budget.Exceeded _ -> ()

(* --------------------------- validation ------------------------------ *)

(* The stream path refuses bad input with exactly the batch errors. *)
let test_validation_parity () =
  let stream input =
    fst
      (Runner.stream_input ~config:Engine.default_config
         ~on_record:(fun _ -> ())
         input)
  in
  let same label input =
    check_string label
      (batch_digest ~method_:Api.Probabilistic input)
      (Runner.outcome_digest (stream input))
  in
  same "no list pages" { Pipeline.list_pages = []; detail_pages = [] };
  same "blank list page"
    { Pipeline.list_pages = [ "  \n " ]; detail_pages = [ "<p>x</p>" ] };
  same "no details"
    { Pipeline.list_pages = [ "<p>a b c</p>" ]; detail_pages = [] };
  same "all details blank"
    { Pipeline.list_pages = [ "<p>a b c</p>" ]; detail_pages = [ ""; " " ] }

(* Lazy page source is byte-identical to materialized generation. *)
let test_page_source_identical () =
  let spec = List.hd (corpus_specs ~sites:1 ~seed:71 ~max_rows:2_000) in
  let generated = Family.generate ~max_pages:4 spec in
  let source = Family.page_source ~max_pages:4 spec in
  let rec drain acc =
    match source () with None -> List.rev acc | Some p -> drain (p :: acc)
  in
  check_bool "page_source = generate" true (drain [] = generated.Family.pages)

let () =
  Alcotest.run "stream"
    [
      ( "identity",
        [
          Alcotest.test_case "twelve built-in sites, both methods" `Slow
            test_builtin_sites_identical;
          Alcotest.test_case "corpus sample, both methods" `Slow
            test_corpus_sample_identical;
          Alcotest.test_case "multi-unit site streams" `Slow
            test_multi_unit_identical;
          Alcotest.test_case "validation parity" `Quick
            test_validation_parity;
          Alcotest.test_case "lazy page source identical" `Quick
            test_page_source_identical;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "first record before source exhausted" `Slow
            test_first_record_before_source_exhausted;
          Alcotest.test_case "template estimate narrows" `Slow
            test_refine_monotone;
        ] );
      ( "memory",
        [
          Alcotest.test_case "10^5-row site bounded" `Slow
            test_bounded_memory_huge_site;
          Alcotest.test_case "hard cap enforced" `Quick
            test_budget_cap_enforced;
        ] );
    ]
