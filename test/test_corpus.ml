(* tabseg.corpus: the site-family sampler's determinism contract (same
   params, same corpus — byte for byte), seed sensitivity, the
   prefix-consistency guarantee for truncated generation of huge sites,
   schema shape bounds, and the evaluation harness (distributions,
   deterministic accuracy digest, scoring through Serve.Service). *)

open Tabseg_corpus

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let small_params =
  {
    Family.default_params with
    Family.sites = 12;
    seed = 5;
    max_rows = 2_000;
    max_rows_per_page = 8;
  }

(* ----------------------------- sampling ------------------------------ *)

let test_sample_deterministic () =
  let a = Family.sample small_params and b = Family.sample small_params in
  check_bool "same params, structurally identical specs" true (a = b)

let test_sample_seed_sensitivity () =
  let a = Family.sample small_params in
  let b = Family.sample { small_params with Family.seed = 6 } in
  let schemas specs =
    List.map
      (fun s ->
        ( List.map (fun f -> f.Family.fd_label) s.Family.sp_fields,
          s.Family.sp_rows ))
      specs
  in
  check_bool "different seeds sample different schemas/row counts" true
    (schemas a <> schemas b)

let test_sample_shapes () =
  let specs = Family.sample { Family.default_params with Family.sites = 200 } in
  check_int "requested corpus size" 200 (List.length specs);
  let names = List.map (fun s -> s.Family.sp_name) specs in
  check_int "names are unique" 200
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun spec ->
      let open Family in
      let p = default_params in
      check_bool "row count within the log-uniform bounds" true
        (spec.sp_rows >= p.min_rows && spec.sp_rows <= p.max_rows);
      check_bool "field count within bounds" true
        (List.length spec.sp_fields >= p.min_fields
        && List.length spec.sp_fields <= p.max_fields);
      check_bool "lead field is never optional" true
        (not (List.hd spec.sp_fields).fd_optional);
      check_bool "at least two list pages" true (page_count spec >= 2);
      check_bool "family key is a known family" true
        (List.mem spec.sp_family family_names))
    specs

let test_sample_nested_extremes () =
  let all_nested =
    Family.sample { small_params with Family.nested_p = 1. }
  in
  let none_nested =
    Family.sample { small_params with Family.nested_p = 0. }
  in
  check_bool "nested_p=1: every site has a repeated sub-record" true
    (List.for_all (fun s -> s.Family.sp_nested <> None) all_nested);
  check_bool "nested_p=0: no site has one" true
    (List.for_all (fun s -> s.Family.sp_nested = None) none_nested)

(* ----------------------------- generation ---------------------------- *)

let test_generate_deterministic () =
  let spec = List.hd (Family.sample small_params) in
  let a = Family.generate ~max_pages:3 spec in
  let b = Family.generate ~max_pages:3 spec in
  check_bool "same spec renders byte-identical pages" true
    (List.map (fun p -> p.Family.list_html) a.Family.pages
     = List.map (fun p -> p.Family.list_html) b.Family.pages
    && List.map (fun p -> p.Family.detail_htmls) a.Family.pages
       = List.map (fun p -> p.Family.detail_htmls) b.Family.pages)

let test_generate_prefix_consistent () =
  (* A truncated generation must be a byte-identical prefix of a longer
     one — the property that lets the harness evaluate 10^5-row sites
     without materializing thousands of pages. *)
  let specs = Family.sample small_params in
  List.iter
    (fun spec ->
      let short = Family.generate ~max_pages:2 spec in
      let long = Family.generate ~max_pages:4 spec in
      List.iteri
        (fun i short_page ->
          let long_page = List.nth long.Family.pages i in
          check_string
            (spec.Family.sp_name ^ ": prefix page byte-identical")
            long_page.Family.list_html short_page.Family.list_html;
          check_bool
            (spec.Family.sp_name ^ ": prefix details byte-identical")
            true
            (long_page.Family.detail_htmls = short_page.Family.detail_htmls))
        short.Family.pages)
    (List.filteri (fun i _ -> i < 4) specs)

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n > 0 && go 0

let test_truth_visible_on_list_page () =
  let specs = Family.sample small_params in
  List.iter
    (fun spec ->
      let generated = Family.generate ~max_pages:1 spec in
      let page = List.hd generated.Family.pages in
      check_bool (spec.Family.sp_name ^ ": page has truth rows") true
        (page.Family.truth <> []);
      List.iter
        (List.iter (fun cell ->
             (* rendering escapes &, < and > *)
             if
               (not (contains cell "&"))
               && (not (contains cell "<"))
               && not (contains cell ">")
             then
               check_bool
                 (Printf.sprintf "%s: truth cell %S on the list page"
                    spec.Family.sp_name cell)
                 true
                 (contains page.Family.list_html cell)))
        page.Family.truth)
    (List.filteri (fun i _ -> i < 6) specs)

let test_segmentation_input_shape () =
  let spec = List.hd (Family.sample small_params) in
  let generated = Family.generate ~max_pages:4 spec in
  let list_pages, details =
    Family.segmentation_input generated ~page_index:0 ~max_siblings:2
  in
  check_int "target plus two siblings" 3 (List.length list_pages);
  let target = List.hd generated.Family.pages in
  check_string "target page first" target.Family.list_html
    (List.hd list_pages);
  check_int "details are the target page's"
    (List.length target.Family.detail_htmls)
    (List.length details)

(* ------------------------------ harness ------------------------------ *)

let test_distribution_math () =
  let d = Harness.distribution [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ] in
  check_bool "mean" true (Float.abs (d.Harness.d_mean -. 0.55) < 1e-9);
  check_bool "p50 (nearest rank)" true
    (Float.abs (d.Harness.d_p50 -. 0.5) < 1e-9);
  check_bool "p5" true (Float.abs (d.Harness.d_p5 -. 0.1) < 1e-9);
  check_bool "p95" true (Float.abs (d.Harness.d_p95 -. 1.0) < 1e-9);
  check_int "histogram bins sum to the sample size" 10
    (Array.fold_left ( + ) 0 d.Harness.d_histogram);
  (* 1.0 clamps into the top bin *)
  check_int "top bin holds 0.9 and 1.0" 2 d.Harness.d_histogram.(9);
  Alcotest.check_raises "empty sample rejected"
    (Invalid_argument "Harness.distribution: empty sample") (fun () ->
      ignore (Harness.distribution []))

let test_site_inputs_shape () =
  let specs = Family.sample { small_params with Family.sites = 3 } in
  let inputs = Harness.site_inputs ~siblings:2 specs in
  check_int "one input per site" 3 (List.length inputs);
  List.iter2
    (fun spec (name, input, truth) ->
      check_string "input keyed by site name" spec.Family.sp_name name;
      check_int "target plus up to two siblings" 3
        (List.length input.Tabseg.Pipeline.list_pages);
      check_int "one detail page per truth row" (List.length truth)
        (List.length input.Tabseg.Pipeline.detail_pages))
    specs inputs

let test_evaluate_small_corpus () =
  let specs = Family.sample { small_params with Family.sites = 5 } in
  let config = { Harness.default_config with Harness.jobs = 1; worst_k = 3 } in
  let report = Harness.evaluate ~config specs in
  let again = Harness.evaluate ~config specs in
  check_int "every site evaluated" 5 report.Harness.sites;
  check_int "no service errors" 0 report.Harness.errors;
  check_int "per-site results in corpus order" 5
    (List.length report.Harness.results);
  List.iter2
    (fun spec result ->
      check_string "result order follows corpus order" spec.Family.sp_name
        result.Harness.r_name)
    specs report.Harness.results;
  check_int "worst-k honoured" 3 (List.length report.Harness.worst);
  check_bool "worst list is sorted worst-first" true
    (match report.Harness.worst with
    | a :: b :: _ -> a.Harness.r_f1 <= b.Harness.r_f1
    | _ -> false);
  check_bool "a clean small corpus scores well" true
    (Tabseg_eval.Metrics.f_measure report.Harness.total > 0.6);
  check_string "accuracy digest is deterministic" report.Harness.digest
    again.Harness.digest;
  check_bool "families cover every site" true
    (List.fold_left (fun n f -> n + f.Harness.fs_sites) 0
       report.Harness.families
    = 5);
  let json =
    Harness.report_json
      ~params:{ small_params with Family.sites = 5 }
      ~config report
  in
  check_bool "json mentions the digest" true (contains json report.Harness.digest);
  check_bool "json carries the percentiles" true (contains json "\"p95\"")

let () =
  Alcotest.run "corpus"
    [
      ( "family",
        [
          Alcotest.test_case "sample deterministic" `Quick
            test_sample_deterministic;
          Alcotest.test_case "sample seed sensitivity" `Quick
            test_sample_seed_sensitivity;
          Alcotest.test_case "sampled shapes within bounds" `Quick
            test_sample_shapes;
          Alcotest.test_case "nested_p extremes" `Quick
            test_sample_nested_extremes;
          Alcotest.test_case "generate deterministic" `Quick
            test_generate_deterministic;
          Alcotest.test_case "truncated generation is a prefix" `Quick
            test_generate_prefix_consistent;
          Alcotest.test_case "truth visible on list pages" `Quick
            test_truth_visible_on_list_page;
          Alcotest.test_case "segmentation input shape" `Quick
            test_segmentation_input_shape;
        ] );
      ( "harness",
        [
          Alcotest.test_case "distribution math" `Quick test_distribution_math;
          Alcotest.test_case "site inputs shape" `Quick test_site_inputs_shape;
          Alcotest.test_case "small corpus end-to-end" `Slow
            test_evaluate_small_corpus;
        ] );
    ]
