(* tabseg — command-line interface.

   Subcommands:
     sites                        list the twelve synthetic sites
     generate -s SITE -o DIR      write a site's pages (and truth) to disk
     segment  -l PAGE... -d DETAIL... [-m csp|prob]
                                  segment raw HTML files
     eval     [-s SITE] [-m ...]  run and score synthetic sites *)

open Cmdliner
open Tabseg_sitegen
open Tabseg_eval

let method_conv =
  let parse = function
    | "csp" -> Ok Tabseg.Api.Csp
    | "prob" | "probabilistic" -> Ok Tabseg.Api.Probabilistic
    | other -> Error (`Msg (Printf.sprintf "unknown method %S" other))
  in
  let print ppf m =
    Format.pp_print_string ppf
      (String.lowercase_ascii (Tabseg.Api.method_name m))
  in
  Arg.conv (parse, print)

let method_arg =
  let doc = "Segmentation method: $(b,csp) or $(b,prob)." in
  Arg.(value & opt method_conv Tabseg.Api.Csp & info [ "m"; "method" ] ~doc)

(* ------------------------------ sites ------------------------------ *)

let sites_cmd =
  let run () =
    let print_site tag site =
      Printf.printf "%-22s %-13s %s records/page, seed %d%s\n"
        site.Sites.name site.Sites.domain
        (String.concat "+"
           (List.map string_of_int site.Sites.records_per_page))
        site.Sites.seed tag
    in
    List.iter (print_site "") Sites.all;
    List.iter (print_site "  (demo)") Sites.demo_sites
  in
  Cmd.v
    (Cmd.info "sites" ~doc:"List the twelve synthetic evaluation sites")
    Term.(const run $ const ())

(* ----------------------------- generate ---------------------------- *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let generate_cmd =
  let site_arg =
    let doc = "Site name (see $(b,tabseg sites))." in
    Arg.(required & opt (some string) None & info [ "s"; "site" ] ~doc)
  in
  let out_arg =
    let doc = "Output directory (created if missing)." in
    Arg.(value & opt string "." & info [ "o"; "out" ] ~doc)
  in
  let run site_name out =
    match Sites.find site_name with
    | exception Not_found ->
      Printf.eprintf "unknown site %S; try `tabseg sites`\n" site_name;
      exit 1
    | site ->
      if not (Sys.file_exists out) then Sys.mkdir out 0o755;
      let generated = Sites.generate site in
      List.iteri
        (fun p page ->
          write_file
            (Filename.concat out (Printf.sprintf "list_%d.html" p))
            page.Sites.list_html;
          List.iteri
            (fun i detail ->
              write_file
                (Filename.concat out (Printf.sprintf "detail_%d_%d.html" p i))
                detail)
            page.Sites.detail_htmls;
          let truth =
            String.concat "\n"
              (List.map (String.concat "\t") page.Sites.truth)
          in
          write_file
            (Filename.concat out (Printf.sprintf "truth_%d.tsv" p))
            truth)
        generated.Sites.pages;
      Printf.printf "wrote %s to %s\n" site.Sites.name out
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Write a synthetic site's pages to disk")
    Term.(const run $ site_arg $ out_arg)

(* ----------------------------- segment ----------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  contents

let segment_cmd =
  let lists_arg =
    let doc =
      "List-page HTML file; pass at least one, the first is segmented."
    in
    Arg.(non_empty & opt_all file [] & info [ "l"; "list" ] ~doc)
  in
  let details_arg =
    let doc = "Detail-page HTML file, in record (link) order." in
    Arg.(non_empty & opt_all file [] & info [ "d"; "detail" ] ~doc)
  in
  let run method_ lists details =
    let input =
      {
        Tabseg.Pipeline.list_pages = List.map read_file lists;
        detail_pages = List.map read_file details;
      }
    in
    let result = Tabseg.Api.segment ~method_ input in
    Format.printf "%a@." Tabseg.Segmentation.pp result.Tabseg.Api.segmentation
  in
  Cmd.v
    (Cmd.info "segment"
       ~doc:"Segment records in a list page given its detail pages")
    Term.(const run $ method_arg $ lists_arg $ details_arg)

(* ------------------------------- eval ------------------------------ *)

let eval_cmd =
  let site_arg =
    let doc = "Restrict to one site (default: all twelve)." in
    Arg.(value & opt (some string) None & info [ "s"; "site" ] ~doc)
  in
  let run method_ site_name =
    let sites =
      match site_name with
      | None -> Sites.all
      | Some name -> (
        match Sites.find name with
        | site -> [ site ]
        | exception Not_found ->
          Printf.eprintf "unknown site %S; try `tabseg sites`\n" name;
          exit 1)
    in
    let all_counts = ref [] in
    List.iter
      (fun site ->
        let generated = Sites.generate site in
        List.iteri
          (fun page_index page ->
            let list_pages, detail_pages =
              Sites.segmentation_input generated ~page_index
            in
            let input = { Tabseg.Pipeline.list_pages; detail_pages } in
            let result = Tabseg.Api.segment ~method_ input in
            let counts =
              Scorer.score ~truth:page.Sites.truth
                result.Tabseg.Api.segmentation
            in
            all_counts := counts :: !all_counts;
            Format.printf "%-22s page %d  %a  %a  notes: %s@."
              site.Sites.name (page_index + 1) Metrics.pp counts
              Metrics.pp_prf counts
              (String.concat ","
                 (List.map
                    (fun n ->
                      String.make 1 (Tabseg.Segmentation.note_letter n))
                    result.Tabseg.Api.segmentation.Tabseg.Segmentation.notes)))
          generated.Sites.pages)
      sites;
    let totals = Metrics.total !all_counts in
    Format.printf "%-22s         %a  %a@." "TOTAL" Metrics.pp totals
      Metrics.pp_prf totals
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Segment and score the synthetic sites")
    Term.(const run $ method_arg $ site_arg)

(* ---------------------------- reconstruct -------------------------- *)

let reconstruct_cmd =
  let lists_arg =
    let doc = "List-page HTML file (first = the page to segment)." in
    Arg.(non_empty & opt_all file [] & info [ "l"; "list" ] ~doc)
  in
  let details_arg =
    let doc = "Detail-page HTML file, in record order." in
    Arg.(non_empty & opt_all file [] & info [ "d"; "detail" ] ~doc)
  in
  let out_arg =
    let doc = "Write CSV here instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~doc)
  in
  let run method_ lists details out =
    let detail_htmls = List.map read_file details in
    let input =
      {
        Tabseg.Pipeline.list_pages = List.map read_file lists;
        detail_pages = detail_htmls;
      }
    in
    let result = Tabseg.Api.segment ~method_ input in
    let table =
      Tabseg.Relational.reconstruct
        ~details:(List.map Tabseg_token.Tokenizer.tokenize detail_htmls)
        ~segmentation:result.Tabseg.Api.segmentation
    in
    let csv = Tabseg.Relational.to_csv table in
    match out with
    | None -> print_string csv
    | Some path ->
      write_file path csv;
      Printf.printf "wrote %d rows to %s\n" (List.length table.Tabseg.Relational.rows) path
  in
  Cmd.v
    (Cmd.info "reconstruct"
       ~doc:"Segment a list page and reconstruct the relation behind the \
             site as CSV")
    Term.(const run $ method_arg $ lists_arg $ details_arg $ out_arg)

(* ------------------------------- auto ------------------------------ *)

(* Cache effectiveness for the --metrics dump: the registry's histograms
   say how long things took, this says how often the caches answered. *)
let cache_stats_dump service =
  match Tabseg_serve.Service.cache_stats service with
  | None -> ""
  | Some stats ->
    let open Tabseg_serve in
    let buffer = Buffer.create 256 in
    let tier name (s : Shard.stats) =
      Buffer.add_string buffer
        (Printf.sprintf
           "  %-12s %6d hits %6d misses  (%5.1f%% hit rate)  %d entries\n"
           name s.Shard.hits s.Shard.misses
           (100. *. Cache.hit_rate s)
           s.Shard.entries)
    in
    Buffer.add_string buffer "cache:\n";
    tier "templates" stats.Cache.templates;
    tier "results" stats.Cache.results;
    (match stats.Cache.persist with
    | None -> ()
    | Some p ->
      let s = p.Cache.store in
      Buffer.add_string buffer
        (Printf.sprintf
           "  %-12s %6d hits (%d tpl, %d res) %6d misses  %s, %d entries, \
            %d KB\n"
           "store"
           (p.Cache.template_hits + p.Cache.result_hits)
           p.Cache.template_hits p.Cache.result_hits p.Cache.misses
           (match s.Tabseg_store.Store.role with
           | Tabseg_store.Store.Writer -> "writer"
           | Tabseg_store.Store.Reader -> "reader")
           s.Tabseg_store.Store.entries
           (s.Tabseg_store.Store.file_bytes / 1024)));
    Buffer.contents buffer

(* One streamed record, printed the moment its detail evidence
   completed — the visible half of `auto --stream`. *)
let record_line url (record : Tabseg.Segmentation.record) =
  Printf.sprintf "record %s r%d: %s" url
    (record.Tabseg.Segmentation.number + 1)
    (String.concat " | "
       (List.map
          (fun (e : Tabseg_extract.Extract.t) -> e.Tabseg_extract.Extract.text)
          record.Tabseg.Segmentation.extracts))

let auto_cmd =
  let site_arg =
    let doc = "Site to simulate and navigate (see $(b,tabseg sites))." in
    Arg.(required & opt (some string) None & info [ "s"; "site" ] ~doc)
  in
  let faults_arg =
    let doc =
      "Inject faults: each URL draws a fault plan (timeouts, 5xx, rate \
       limits, truncated or garbled bodies) with this probability. 0 \
       disables injection entirely."
    in
    Arg.(value & opt float 0. & info [ "faults" ] ~doc ~docv:"RATE")
  in
  let fault_seed_arg =
    let doc = "Seed for the fault plans; runs are reproducible per seed." in
    Arg.(value & opt int 0 & info [ "fault-seed" ] ~doc ~docv:"SEED")
  in
  let permanent_arg =
    let doc =
      "Fraction of faulty URLs whose fault is permanent rather than \
       transient."
    in
    Arg.(
      value
      & opt float Tabseg_navigator.Faults.default_config.permanent_rate
      & info [ "permanent" ] ~doc ~docv:"RATE")
  in
  let retries_arg =
    let doc = "Fetch attempts per URL (including the first)." in
    Arg.(
      value
      & opt int Tabseg_navigator.Crawler.default_retry_policy.max_attempts
      & info [ "retries" ] ~doc ~docv:"N")
  in
  let report_arg =
    let doc =
      "Print the structured crawl report (attempts, retries, give-ups \
       per error class, breaker trips, virtual time)."
    in
    Arg.(value & flag & info [ "report" ] ~doc)
  in
  let jobs_arg =
    let doc =
      "Segment list pages on this many worker domains (through the \
       serving layer). 1 = sequential; results are identical either way."
    in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~doc ~docv:"N")
  in
  let procs_arg =
    let doc =
      "Shard segmentation across this many worker processes through \
       the gateway (master + forked workers over socket RPC). 1 runs \
       inline with no fork. Combine with --store so the workers share \
       one warm cache directory: the first to grab the lock writes, \
       the rest read and offload their writes back to it. Results are \
       byte-identical to a sequential run."
    in
    Arg.(value & opt int 1 & info [ "procs" ] ~doc ~docv:"N")
  in
  let cache_mb_arg =
    let doc =
      "Budget (MB) of the serving layer's template cache and result \
       memo. 0 disables caching."
    in
    Arg.(value & opt int 64 & info [ "cache-mb" ] ~doc ~docv:"MB")
  in
  let metrics_arg =
    let doc =
      "Print the metrics registry after the run: request counters, \
       cache hits, and per-stage latency histograms (crawl, tokenize, \
       template, extract, CSP/HMM)."
    in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let metrics_json_arg =
    let doc =
      "Write the metrics registry as JSON to $(docv) ($(b,-) for \
       stdout): counters, gauges and every latency histogram — \
       including the per-stage $(b,stage.*) timings (tokenize, \
       template, extract, csp, hmm) the instrumentation bus collects."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~doc ~docv:"PATH")
  in
  let stream_arg =
    let doc =
      "Segment through the streaming engine: print each record the \
       moment its detail evidence completes, before the site's full \
       result is ready. Final segmentations are byte-identical to the \
       batch path."
    in
    Arg.(value & flag & info [ "stream" ] ~doc)
  in
  let store_arg =
    let doc =
      "Back the caches with a persistent store in this directory \
       (created if missing; conventionally NAME.tabstore). Induced \
       templates and results written there survive restarts and are \
       shared with other tabseg processes (one writer, many readers)."
    in
    Arg.(
      value & opt (some string) None & info [ "store" ] ~doc ~docv:"DIR")
  in
  let spill_arg =
    let doc =
      "With --procs > 1: adaptive affinity. When a request's \
       site-affinity worker already holds more than $(docv) requests, \
       route it to the least-loaded worker instead (counted as \
       gateway.spilled). Results stay byte-identical; only tail \
       latency changes. Unset: strict affinity, never spill."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "spill-threshold" ] ~doc ~docv:"N")
  in
  let quota_arg =
    let doc =
      "With --procs > 1: per-site admission quota. Each site gets a \
       token bucket refilled at $(docv) requests/second (burst = one \
       second of quota), so one hot site cannot monopolize the \
       workers; excess requests fail with a typed quota error carrying \
       a retry-after hint. Unset: unlimited."
    in
    Arg.(
      value & opt (some float) None & info [ "site-quota" ] ~doc ~docv:"RPS")
  in
  let shed_arg =
    let doc =
      "With --procs > 1 and --deadline: deadline-aware load shedding. \
       Reject at admission any request predicted (per-worker EWMA of \
       service time times queue depth) to miss its deadline, so worker \
       queues hold only winnable work. Off by default: requests queue \
       and may burn their whole deadline before failing."
    in
    Arg.(value & flag & info [ "shed" ] ~doc)
  in
  let deadline_arg =
    let doc =
      "With --procs > 1: per-request deadline at the gateway, in \
       seconds; a request not answered in time fails with a typed \
       deadline error. Unset: wait forever."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~doc ~docv:"SECONDS")
  in
  let run method_ site_name fault_rate fault_seed permanent retries
      show_report jobs procs cache_mb show_metrics metrics_json stream
      store_dir spill_threshold site_quota shed deadline =
    match Tabseg_sitegen.Sites.find site_name with
    | exception Not_found ->
      Printf.eprintf "unknown site %S; try `tabseg sites`\n" site_name;
      exit 1
    | site ->
      let generated = Tabseg_sitegen.Sites.generate site in
      let graph = Tabseg_navigator.Simulate.graph_of_site generated in
      let source =
        if fault_rate > 0. then
          Tabseg_navigator.Faults.wrap
            ~config:
              {
                Tabseg_navigator.Faults.default_config with
                Tabseg_navigator.Faults.seed = fault_seed;
                fault_rate;
                permanent_rate = permanent;
              }
            graph
        else Tabseg_navigator.Faults.pristine graph
      in
      let retry =
        {
          Tabseg_navigator.Crawler.default_retry_policy with
          Tabseg_navigator.Crawler.max_attempts = max 1 retries;
        }
      in
      let use_service =
        jobs > 1 || procs > 1 || show_metrics || metrics_json <> None
        || stream || store_dir <> None
      in
      let report, metrics_dump, metrics_json_payload =
        if not use_service then
          (Tabseg_navigator.Auto.run_resilient ~retry ~method_ source, None,
           None)
        else if procs > 1 then begin
          (* Multi-process: the gateway forks the workers and shards
             the request stream across them by site affinity. *)
          let open Tabseg_serve in
          let open Tabseg_gateway in
          let config =
            {
              Gateway.default_config with
              Gateway.procs;
              deadline_s = deadline;
              spill_threshold;
              site_quota_rps = site_quota;
              shed;
              service =
                {
                  Service.default_config with
                  Service.jobs;
                  method_;
                  cache =
                    (if cache_mb > 0 then
                       Some
                         { Cache.default_config with
                           Cache.capacity_mb = cache_mb }
                     else None);
                  store_dir;
                };
            }
          in
          let gateway = Gateway.create ~config () in
          Gateway.install_sigterm gateway;
          Fun.protect ~finally:(fun () -> Gateway.shutdown gateway)
          @@ fun () ->
          let run_requests requests =
            if not stream then Gateway.run_batch gateway requests
            else
              (* One stream at a time: records print in order, and the
                 final responses land in request order like run_batch. *)
              List.map
                (fun (request : Service.request) ->
                  let result = ref None in
                  Gateway.submit_stream gateway
                    ~on_record:(fun _index record ->
                      print_endline (record_line request.Service.id record))
                    ~on_complete:(fun response -> result := Some response)
                    request;
                  let rec wait () =
                    match !result with
                    | Some response -> response
                    | None ->
                      Gateway.pump ~max_wait_s:0.05 gateway;
                      wait ()
                  in
                  wait ())
                requests
          in
          let segment_batch batch =
            let requests =
              List.map
                (fun (url, input) -> { Service.id = url; site = url; input })
                batch
            in
            List.map
              (fun (response : Gateway.response) ->
                match response.Gateway.outcome with
                | Ok result -> Ok result
                | Error (Gateway.Service_error (Service.Invalid_input error))
                  ->
                  Error error
                | Error error ->
                  Error
                    (Tabseg.Api.Pipeline_failure (Gateway.error_message error)))
              (run_requests requests)
          in
          let report =
            Tabseg_navigator.Auto.run_resilient ~retry ~method_
              ~segment_batch source
          in
          let dump =
            if show_metrics then
              Some (Metrics.report (Gateway.metrics gateway))
            else None
          in
          let json =
            if metrics_json <> None then
              Some (Metrics.to_json (Gateway.metrics gateway))
            else None
          in
          (report, dump, json)
        end
        else begin
          let open Tabseg_serve in
          let config =
            {
              Service.default_config with
              Service.jobs;
              method_;
              cache =
                (if cache_mb > 0 then
                   Some { Cache.default_config with Cache.capacity_mb = cache_mb }
                 else None);
              store_dir;
            }
          in
          let service = Service.create ~config () in
          Fun.protect ~finally:(fun () -> Service.shutdown service)
          @@ fun () ->
          let run_requests requests =
            if not stream then Service.run_batch service requests
            else
              List.map
                (fun (request : Service.request) ->
                  Service.segment_stream service
                    ~on_record:(fun record ->
                      print_endline (record_line request.Service.id record))
                    request)
                requests
          in
          let segment_batch batch =
            let requests =
              List.map
                (fun (url, input) -> { Service.id = url; site = url; input })
                batch
            in
            List.map
              (fun (response : Service.response) ->
                match response.Service.outcome with
                | Ok result -> Ok result
                | Error (Service.Invalid_input error) -> Error error
                | Error error ->
                  Error
                    (Tabseg.Api.Pipeline_failure (Service.error_message error)))
              (run_requests requests)
          in
          let report =
            Tabseg_navigator.Auto.run_resilient ~retry ~method_
              ~segment_batch source
          in
          let dump =
            if show_metrics then
              Some
                (Metrics.report (Service.metrics service)
                ^ cache_stats_dump service)
            else None
          in
          let json =
            if metrics_json <> None then
              Some (Metrics.to_json (Service.metrics service))
            else None
          in
          (report, dump, json)
        end
      in
      Format.printf
        "crawled %d pages: %d list, %d detail, %d other@."
        report.Tabseg_navigator.Auto.pages_fetched
        report.Tabseg_navigator.Auto.lists_found
        report.Tabseg_navigator.Auto.details_found
        report.Tabseg_navigator.Auto.others_found;
      if
        report.Tabseg_navigator.Auto.details_missing > 0
        || report.Tabseg_navigator.Auto.details_corrupted > 0
      then
        Format.printf "degraded: %d detail page(s) missing, %d corrupted@."
          report.Tabseg_navigator.Auto.details_missing
          report.Tabseg_navigator.Auto.details_corrupted;
      List.iter
        (fun (url, error) ->
          Format.printf "skipped %s: %s@." url
            (Tabseg.Api.input_error_message error))
        report.Tabseg_navigator.Auto.skipped;
      List.iter
        (fun result ->
          Format.printf "@.%s:@.%a@."
            result.Tabseg_navigator.Auto.list_url
            Tabseg.Segmentation.pp
            result.Tabseg_navigator.Auto.segmentation)
        report.Tabseg_navigator.Auto.results;
      if show_report then
        Format.printf "@.crawl report:@.%a@."
          Tabseg_navigator.Crawler.pp_report
          report.Tabseg_navigator.Auto.crawl;
      (match metrics_dump with
      | Some dump -> Format.printf "@.metrics:@.%s@?" dump
      | None -> ());
      match (metrics_json, metrics_json_payload) with
      | Some "-", Some json -> print_endline json
      | Some path, Some json ->
        write_file path json;
        Printf.printf "wrote metrics to %s\n" path
      | _, _ -> ()
  in
  Cmd.v
    (Cmd.info "auto"
       ~doc:"Navigate a simulated site from its entry page and segment \
             every list page found, optionally through injected faults \
             and in parallel through the serving layer")
    Term.(
      const run $ method_arg $ site_arg $ faults_arg $ fault_seed_arg
      $ permanent_arg $ retries_arg $ report_arg $ jobs_arg $ procs_arg
      $ cache_mb_arg $ metrics_arg $ metrics_json_arg $ stream_arg
      $ store_arg $ spill_arg $ quota_arg $ shed_arg $ deadline_arg)

(* ------------------------------- serve ----------------------------- *)

let address_conv =
  let parse s =
    match Tabseg_daemon.Protocol.address_of_string s with
    | Ok a -> Ok a
    | Error e -> Error (`Msg e)
  in
  let print ppf a =
    Format.pp_print_string ppf (Tabseg_daemon.Protocol.address_to_string a)
  in
  Arg.conv ~docv:"ADDR" (parse, print)

let gateway_config ~method_ ~jobs ~procs ~cache_mb ~store_dir ~spill_threshold
    ~site_quota ~shed ~deadline =
  let open Tabseg_serve in
  let open Tabseg_gateway in
  {
    Gateway.default_config with
    Gateway.procs = max 1 procs;
    deadline_s = deadline;
    spill_threshold;
    site_quota_rps = site_quota;
    shed;
    service =
      {
        Service.default_config with
        Service.jobs;
        method_;
        cache =
          (if cache_mb > 0 then
             Some { Cache.default_config with Cache.capacity_mb = cache_mb }
           else None);
        store_dir;
      };
  }

let serve_cmd =
  let open Tabseg_daemon in
  let listen_arg =
    let doc =
      "Listen address: $(b,unix:PATH) or $(b,tcp:HOST:PORT) (port 0 \
       binds a kernel-assigned port and prints the real one)."
    in
    Arg.(
      value
      & opt address_conv Daemon.default_config.Daemon.listen
      & info [ "listen" ] ~doc ~docv:"ADDR")
  in
  let auth_arg =
    let doc =
      "Shared secret: clients must present exactly this token in their \
       handshake or be rejected. Unset: no authentication."
    in
    Arg.(
      value & opt (some string) None & info [ "auth-token" ] ~doc ~docv:"TOKEN")
  in
  let idle_arg =
    let doc =
      "Close a connection idle (no inbound bytes, nothing outstanding) \
       for this many seconds. Unset: keep idle connections forever."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "idle-timeout" ] ~doc ~docv:"SECONDS")
  in
  let inflight_arg =
    let doc =
      "Pipelining window: requests one connection may have outstanding \
       before the excess is refused in-order with a typed overload error."
    in
    Arg.(
      value
      & opt int Daemon.default_config.Daemon.max_conn_inflight
      & info [ "max-conn-inflight" ] ~doc ~docv:"N")
  in
  let max_conns_arg =
    let doc = "Accept cap; above it handshakes are rejected as full." in
    Arg.(
      value
      & opt int Daemon.default_config.Daemon.max_connections
      & info [ "max-connections" ] ~doc ~docv:"N")
  in
  let drain_grace_arg =
    let doc =
      "SIGTERM drain budget: seconds to let in-flight work finish \
       before shutting the gateway down anyway."
    in
    Arg.(
      value
      & opt float Daemon.default_config.Daemon.drain_grace_s
      & info [ "drain-grace" ] ~doc ~docv:"SECONDS")
  in
  let procs_arg =
    let doc = "Worker processes behind the gateway (1 = inline, no fork)." in
    Arg.(value & opt int 2 & info [ "procs" ] ~doc ~docv:"N")
  in
  let jobs_arg =
    let doc = "Worker domains per process." in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~doc ~docv:"N")
  in
  let cache_mb_arg =
    let doc = "Cache budget (MB) per worker; 0 disables." in
    Arg.(value & opt int 64 & info [ "cache-mb" ] ~doc ~docv:"MB")
  in
  let store_arg =
    let doc = "Persistent store directory shared by the workers." in
    Arg.(value & opt (some string) None & info [ "store" ] ~doc ~docv:"DIR")
  in
  let spill_arg =
    let doc = "Adaptive affinity spill threshold (see $(b,tabseg auto))." in
    Arg.(
      value & opt (some int) None & info [ "spill-threshold" ] ~doc ~docv:"N")
  in
  let quota_arg =
    let doc =
      "Per-site admission quota (requests/second). Excess requests are \
       refused with a typed quota error carrying a retry-after hint — \
       which $(b,tabseg loadgen --retry) honours."
    in
    Arg.(
      value & opt (some float) None & info [ "site-quota" ] ~doc ~docv:"RPS")
  in
  let shed_arg =
    let doc = "Deadline-aware admission shedding (needs --deadline)." in
    Arg.(value & flag & info [ "shed" ] ~doc)
  in
  let deadline_arg =
    let doc = "Per-request deadline at the gateway, in seconds." in
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~doc ~docv:"SECONDS")
  in
  let run method_ listen auth_token idle_timeout max_conn_inflight
      max_connections drain_grace procs jobs cache_mb store_dir spill_threshold
      site_quota shed deadline =
    let config =
      {
        Daemon.listen;
        auth_token;
        idle_timeout_s = idle_timeout;
        handshake_timeout_s = Daemon.default_config.Daemon.handshake_timeout_s;
        max_conn_inflight;
        max_connections;
        drain_grace_s = drain_grace;
        gateway =
          gateway_config ~method_ ~jobs ~procs ~cache_mb ~store_dir
            ~spill_threshold ~site_quota ~shed ~deadline;
      }
    in
    match Daemon.create ~config () with
    | exception Unix.Unix_error (err, fn, arg) ->
      Printf.eprintf "tabseg serve: cannot bind %s: %s (%s %s)\n"
        (Tabseg_daemon.Protocol.address_to_string listen)
        (Unix.error_message err) fn arg;
      exit 1
    | t ->
      Printf.printf "tabseg daemon listening on %s (pid %d, %d proc(s))\n"
        (Tabseg_daemon.Protocol.address_to_string (Daemon.bound_address t))
        (Unix.getpid ()) (max 1 procs);
      (match config.Daemon.auth_token with
      | Some _ -> print_endline "authentication required"
      | None -> ());
      print_endline "SIGTERM drains gracefully";
      flush stdout;
      Daemon.serve t;
      print_endline "drained; bye"
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the segmentation daemon: a TCP or Unix-domain-socket \
             front door over the multi-process gateway")
    Term.(
      const run $ method_arg $ listen_arg $ auth_arg $ idle_arg $ inflight_arg
      $ max_conns_arg $ drain_grace_arg $ procs_arg $ jobs_arg $ cache_mb_arg
      $ store_arg $ spill_arg $ quota_arg $ shed_arg $ deadline_arg)

(* ------------------------------ corpus ------------------------------ *)

module Corpus_family = Tabseg_corpus.Family
module Corpus_harness = Tabseg_corpus.Harness

let corpus_sites_arg =
  let doc = "Number of sites to sample." in
  Arg.(value & opt int 100 & info [ "n"; "sites" ] ~doc ~docv:"N")

let corpus_seed_arg =
  let doc = "Corpus sampler seed (same seed, same corpus — always)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~doc ~docv:"SEED")

let corpus_max_page_arg =
  let doc = "Upper bound on records per list page." in
  Arg.(
    value
    & opt int Corpus_family.default_params.Corpus_family.max_rows_per_page
    & info [ "max-rows-per-page" ] ~doc ~docv:"N")

let corpus_params ~sites ~seed ~max_rows_per_page =
  { Corpus_family.default_params with sites; seed; max_rows_per_page }

let corpus_gen_cmd =
  let out_arg =
    let doc = "Output directory (created if missing)." in
    Arg.(value & opt string "corpus" & info [ "o"; "out" ] ~doc)
  in
  let max_pages_arg =
    let doc =
      "Materialize at most this many list pages per site (sites sampled \
       at 10^5 rows paginate into thousands; the written prefix is \
       byte-identical to the full site's first pages)."
    in
    Arg.(value & opt int 5 & info [ "max-pages" ] ~doc ~docv:"K")
  in
  let run sites seed max_rows_per_page out max_pages =
    let params = corpus_params ~sites ~seed ~max_rows_per_page in
    let specs = Corpus_family.sample params in
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    let manifest = Buffer.create 1024 in
    Buffer.add_string manifest
      "name\tfamily\tseed\trows\trows_per_page\tpages\tfields\n";
    List.iter
      (fun spec ->
        let open Corpus_family in
        Buffer.add_string manifest
          (Printf.sprintf "%s\t%s\t%d\t%d\t%d\t%d\t%s\n" spec.sp_name
             spec.sp_family spec.sp_seed spec.sp_rows spec.sp_rows_per_page
             (page_count spec)
             (String.concat ","
                (List.map (fun f -> f.fd_label) spec.sp_fields
                @
                match spec.sp_nested with
                | Some n -> [ n.ns_label ^ "*" ]
                | None -> [])));
        let dir = Filename.concat out spec.sp_name in
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        let generated = generate ~max_pages spec in
        List.iteri
          (fun p page ->
            write_file
              (Filename.concat dir (Printf.sprintf "list_%d.html" p))
              page.list_html;
            List.iteri
              (fun i detail ->
                write_file
                  (Filename.concat dir
                     (Printf.sprintf "detail_%d_%d.html" p i))
                  detail)
              page.detail_htmls;
            write_file
              (Filename.concat dir (Printf.sprintf "truth_%d.tsv" p))
              (String.concat "\n"
                 (List.map (String.concat "\t") page.truth)))
          generated.pages)
      specs;
    write_file (Filename.concat out "manifest.tsv") (Buffer.contents manifest);
    Printf.printf "wrote %d sites (and manifest.tsv) to %s\n"
      (List.length specs) out
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:"Sample a seeded corpus and write its pages and ground truth \
             to disk")
    Term.(
      const run $ corpus_sites_arg $ corpus_seed_arg $ corpus_max_page_arg
      $ out_arg $ max_pages_arg)

let corpus_eval_cmd =
  let jobs_arg =
    let doc = "Service worker domains (<= 1 runs inline)." in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~doc ~docv:"N")
  in
  let siblings_arg =
    let doc = "Extra list pages given to template induction." in
    Arg.(
      value
      & opt int Corpus_harness.default_config.Corpus_harness.siblings
      & info [ "siblings" ] ~doc ~docv:"N")
  in
  let worst_arg =
    let doc = "How many worst sites to digest for triage." in
    Arg.(
      value
      & opt int Corpus_harness.default_config.Corpus_harness.worst_k
      & info [ "worst" ] ~doc ~docv:"K")
  in
  let json_arg =
    let doc = "Also write the full report as JSON to this path." in
    Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"PATH")
  in
  (* Defaults to prob, unlike the other verbs: strict CSP scores an
     unsatisfiable (contaminated) site all-wrong, which makes it the
     wrong default for a corpus whose sampler contaminates on purpose. *)
  let corpus_method_arg =
    let doc = "Segmentation method: $(b,csp) or $(b,prob)." in
    Arg.(
      value
      & opt method_conv Tabseg.Api.Probabilistic
      & info [ "m"; "method" ] ~doc)
  in
  let run sites seed max_rows_per_page method_ jobs siblings worst json_path =
    let params = corpus_params ~sites ~seed ~max_rows_per_page in
    let specs = Corpus_family.sample params in
    let config =
      {
        Corpus_harness.default_config with
        Corpus_harness.method_;
        jobs;
        siblings;
        worst_k = worst;
      }
    in
    let report = Corpus_harness.evaluate ~config specs in
    print_string (Corpus_harness.render_report report);
    match json_path with
    | None -> ()
    | Some path ->
      write_file path (Corpus_harness.report_json ~params ~config report);
      Printf.printf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "eval"
       ~doc:"Sample a seeded corpus, segment every site through the \
             service and report P/R/F distributions")
    Term.(
      const run $ corpus_sites_arg $ corpus_seed_arg $ corpus_max_page_arg
      $ corpus_method_arg $ jobs_arg $ siblings_arg $ worst_arg $ json_arg)

let corpus_cmd =
  Cmd.group
    (Cmd.info "corpus"
       ~doc:"Seeded site-family corpora: generate to disk or evaluate at \
             scale")
    [ corpus_gen_cmd; corpus_eval_cmd ]

(* ------------------------------ loadgen ----------------------------- *)

let loadgen_cmd =
  let open Tabseg_daemon in
  let connect_arg =
    let doc = "Daemon address: $(b,unix:PATH) or $(b,tcp:HOST:PORT)." in
    Arg.(
      value
      & opt address_conv Daemon.default_config.Daemon.listen
      & info [ "connect" ] ~doc ~docv:"ADDR")
  in
  let conns_arg =
    let doc = "Concurrent connections." in
    Arg.(value & opt int 4 & info [ "c"; "conns" ] ~doc ~docv:"N")
  in
  let rate_arg =
    let doc =
      "Open-loop mode: schedule arrivals at this rate (requests/second \
       across all connections), regardless of completions. Latency is \
       measured from the scheduled arrival. Unset: closed loop."
    in
    Arg.(value & opt (some float) None & info [ "rate" ] ~doc ~docv:"RPS")
  in
  let pipeline_arg =
    let doc =
      "Closed-loop mode: keep this many requests outstanding per \
       connection (ignored with --rate)."
    in
    Arg.(value & opt int 1 & info [ "pipeline" ] ~doc ~docv:"N")
  in
  let duration_arg =
    let doc = "Arrival window in seconds (draining runs after)." in
    Arg.(value & opt float 5.0 & info [ "duration" ] ~doc ~docv:"SECONDS")
  in
  let sites_arg =
    let doc =
      "Restrict the site universe (repeatable; default: all twelve \
       synthetic sites)."
    in
    Arg.(value & opt_all string [] & info [ "s"; "site" ] ~doc ~docv:"SITE")
  in
  let zipf_arg =
    let doc =
      "Zipf exponent for site skew: 0 = uniform, 1 ≈ web-like traffic."
    in
    Arg.(value & opt float 0. & info [ "zipf" ] ~doc ~docv:"EXPONENT")
  in
  let seed_arg =
    let doc = "Site-skew RNG seed." in
    Arg.(value & opt int 42 & info [ "seed" ] ~doc ~docv:"SEED")
  in
  let auth_arg =
    let doc = "Token presented in every handshake." in
    Arg.(
      value & opt (some string) None & info [ "auth-token" ] ~doc ~docv:"TOKEN")
  in
  let service_ms_arg =
    let doc =
      "Attach a sleep fault of this many milliseconds to every request \
       — models service time without burning CPU."
    in
    Arg.(value & opt float 0. & info [ "service-ms" ] ~doc ~docv:"MS")
  in
  let retry_arg =
    let doc =
      "Honour the retry-after hint in quota rejections: re-submit after \
       the hinted delay, keeping the original arrival time for latency."
    in
    Arg.(value & flag & info [ "retry" ] ~doc)
  in
  let max_retries_arg =
    let doc = "Retry budget per request (with --retry)." in
    Arg.(value & opt int 3 & info [ "max-retries" ] ~doc ~docv:"N")
  in
  let verify_arg =
    let doc =
      "Render every Ok reply and compare it byte-for-byte against an \
       in-process segmentation of the same input (assumes the server \
       runs the same method); mismatches fail the run."
    in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let corpus_arg =
    let doc =
      "Draw the site universe from this many sampled corpus sites (see \
       $(b,tabseg corpus)) instead of the twelve built-in sites — Zipf \
       skew then ranges over a realistic large universe."
    in
    Arg.(value & opt int 0 & info [ "corpus" ] ~doc ~docv:"N")
  in
  let corpus_seed_arg =
    let doc = "Corpus sampler seed (with --corpus)." in
    Arg.(value & opt int 1 & info [ "corpus-seed" ] ~doc ~docv:"SEED")
  in
  let stream_arg =
    let doc =
      "Submit streaming requests and report time-to-first-record \
       percentiles alongside full-reply latency. TTFR is measured from \
       each request's scheduled arrival, so it is coordinated-omission \
       free like the full latencies."
    in
    Arg.(value & flag & info [ "stream" ] ~doc)
  in
  let run method_ address connections rate pipeline duration site_names zipf
      seed auth_token service_ms retry max_retries verify corpus corpus_seed
      stream =
    let sites =
      if corpus > 0 then begin
        if site_names <> [] then begin
          Printf.eprintf "--corpus and --site are mutually exclusive\n";
          exit 1
        end;
        (* the bounded bench profile: page size capped so per-request
           service time stays sane under load *)
        let params =
          corpus_params ~sites:corpus ~seed:corpus_seed ~max_rows_per_page:12
        in
        Corpus_harness.site_inputs (Corpus_family.sample params)
        |> List.map (fun (name, input, _truth) -> (name, input))
        |> Array.of_list
      end
      else begin
        let chosen =
          match site_names with
          | [] -> Sites.all
          | names ->
            List.map
              (fun name ->
                match Sites.find name with
                | site -> site
                | exception Not_found ->
                  Printf.eprintf "unknown site %S; try `tabseg sites`\n" name;
                  exit 1)
              names
        in
        Array.of_list
          (List.map
             (fun site ->
               let generated = Sites.generate site in
               let list_pages, detail_pages =
                 Sites.segmentation_input generated ~page_index:0
               in
               ( site.Sites.name,
                 { Tabseg.Pipeline.list_pages; detail_pages } ))
             chosen)
      end
    in
    let expected =
      if not verify then []
      else
        Array.to_list
          (Array.map
             (fun (name, input) ->
               let result = Tabseg.Api.segment ~method_ input in
               ( name,
                 Format.asprintf "%a" Tabseg.Segmentation.pp
                   result.Tabseg.Api.segmentation ))
             sites)
    in
    let config =
      {
        Loadgen.default_config with
        Loadgen.address;
        connections;
        mode =
          (match rate with
          | Some rate -> Loadgen.Open_loop { rate }
          | None -> Loadgen.Closed_loop { pipeline = max 1 pipeline });
        duration_s = duration;
        seed;
        auth_token;
        sites;
        zipf_exponent = zipf;
        fault =
          (if service_ms > 0. then
             Tabseg_gateway.Wire.Sleep_s (service_ms /. 1000.)
           else Tabseg_gateway.Wire.No_fault);
        retry_quota = retry;
        max_retries;
        expected;
        stream;
      }
    in
    match Loadgen.run config with
    | Error why ->
      Printf.eprintf "loadgen: %s\n" why;
      exit 1
    | Ok stats ->
      Printf.printf "offered %d  completed %d  ok %d  failed %d\n"
        stats.Loadgen.offered stats.Loadgen.completed stats.Loadgen.ok
        stats.Loadgen.failed;
      if stats.Loadgen.errors <> [] then
        Printf.printf "errors: %s\n"
          (String.concat "  "
             (List.map
                (fun (label, n) -> Printf.sprintf "%s=%d" label n)
                stats.Loadgen.errors));
      if retry || stats.Loadgen.retried > 0 then
        Printf.printf "retried %d  recovered %d  abandoned %d\n"
          stats.Loadgen.retried stats.Loadgen.recovered
          stats.Loadgen.abandoned;
      if verify then Printf.printf "mismatches %d\n" stats.Loadgen.mismatches;
      Printf.printf "wall %.2f s  rps %.1f  goodput %.1f\n"
        stats.Loadgen.wall_s stats.Loadgen.rps stats.Loadgen.goodput_rps;
      Printf.printf
        "latency ms: mean %.2f  p50 %.2f  p95 %.2f  p99 %.2f  max %.2f\n"
        stats.Loadgen.mean_ms stats.Loadgen.p50_ms stats.Loadgen.p95_ms
        stats.Loadgen.p99_ms stats.Loadgen.max_ms;
      if stream then
        Printf.printf
          "records %d  ttfr ms: mean %.2f  p50 %.2f  p95 %.2f  p99 %.2f\n"
          stats.Loadgen.records stats.Loadgen.ttfr_mean_ms
          stats.Loadgen.ttfr_p50_ms stats.Loadgen.ttfr_p95_ms
          stats.Loadgen.ttfr_p99_ms;
      if stats.Loadgen.mismatches > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Drive a running daemon with sustained concurrent load \
             (open- or closed-loop, Zipf site skew, optional \
             quota-retry, streaming TTFR and byte-identity \
             verification)")
    Term.(
      const run $ method_arg $ connect_arg $ conns_arg $ rate_arg
      $ pipeline_arg $ duration_arg $ sites_arg $ zipf_arg $ seed_arg
      $ auth_arg $ service_ms_arg $ retry_arg $ max_retries_arg $ verify_arg
      $ corpus_arg $ corpus_seed_arg $ stream_arg)

let () =
  let doc = "automatic segmentation of records in Web tables" in
  let info = Cmd.info "tabseg" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ sites_cmd; generate_cmd; segment_cmd; eval_cmd; auto_cmd;
            reconstruct_cmd; serve_cmd; loadgen_cmd; corpus_cmd ]))
