(* tabseg_lint: the project-invariant gate.

   Walks every .ml under the given roots (default: lib bin bench),
   parses each with compiler-libs, and reports violations of the
   project invariants as file:line findings with stable rule ids.
   Two passes share one catalog and one suppression syntax: the
   syntactic rules (TS001-TS007, Lint) and the interprocedural
   taint/resource-flow rules (TS008-TS012, Taint). Exits 1 when any
   unsuppressed finding remains, so `make lint` (and CI) fail closed.
   See `tabseg_lint --list-rules` or the README section "Keeping the
   invariants honest".

   --json emits the findings as a JSON array with a stable schema
   (id/slug/file/line/col/message/chain) for CI artifacts and
   downstream tooling; the exit code contract is unchanged. *)

module Lint = Tabseg_analyze.Lint
module Flow = Tabseg_analyze.Flow
module Taint = Tabseg_analyze.Taint

let default_roots = [ "lib"; "bin"; "bench" ]

let rec ml_files_under path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.concat_map (fun entry ->
           if String.length entry > 0 && (entry.[0] = '.' || entry.[0] = '_')
           then []
           else ml_files_under (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let list_rules () =
  print_endline "rule id  slug                        invariant";
  List.iter
    (fun (id, slug, description) ->
      Printf.printf "%-8s %-27s %s\n" id slug description)
    (Lint.rules_table ());
  print_endline
    "\nSuppress a finding at its site with\n\
    \  [@tabseg.allow \"<slug>\" \"<one-line justification>\"]\n\
     (or [@@tabseg.allow ...] on a binding, [@@@tabseg.allow ...] for a \
     whole file)."

(* Minimal JSON string escaping: the only metacharacters our messages
   can contain are quotes, backslashes and control chars. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_finding (f : Lint.finding) =
  Printf.sprintf
    "  {\"id\": \"%s\", \"slug\": \"%s\", \"file\": \"%s\", \"line\": %d, \
     \"col\": %d, \"message\": \"%s\", \"chain\": [%s]}"
    (Lint.rule_id f.rule)
    (json_escape (Lint.rule_slug f.rule))
    (json_escape f.file) f.line f.col (json_escape f.message)
    (String.concat ", "
       (List.map (fun s -> Printf.sprintf "\"%s\"" (json_escape s)) f.chain))

let print_json files findings =
  print_endline "{";
  Printf.printf "\"files\": %d,\n" (List.length files);
  Printf.printf "\"findings\": [\n%s\n]\n"
    (String.concat ",\n" (List.map json_of_finding findings));
  print_endline "}"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--list-rules" args then list_rules ()
  else begin
    let json = List.mem "--json" args in
    let args = List.filter (fun a -> a <> "--json") args in
    let roots = match args with [] -> default_roots | roots -> roots in
    let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
    if missing <> [] then begin
      Printf.eprintf "tabseg_lint: no such file or directory: %s\n"
        (String.concat ", " missing);
      exit 2
    end;
    let files = List.concat_map ml_files_under roots in
    let syntactic = Lint.lint_files files in
    let dataflow = Taint.analyze (List.map Flow.scan_file files) in
    let findings = syntactic @ dataflow in
    if json then print_json files findings
    else begin
      List.iter (fun f -> print_endline (Lint.render f)) findings;
      match findings with
      | [] ->
        Printf.printf "tabseg_lint: %d files clean (rules TS001-TS012)\n"
          (List.length files)
      | _ ->
        Printf.printf
          "tabseg_lint: %d finding(s) in %d files; suppress only with a \
           justified [@tabseg.allow], see --list-rules\n"
          (List.length findings) (List.length files)
    end;
    if findings <> [] then exit 1
  end
