(* tabseg_lint: the project-invariant gate.

   Walks every .ml under the given roots (default: lib bin bench),
   parses each with compiler-libs, and reports violations of the
   project invariants as file:line findings with stable rule ids.
   Exits 1 when any unsuppressed finding remains, so `make lint` (and
   CI) fail closed. See `tabseg_lint --list-rules` or the README
   section "Keeping the invariants honest". *)

module Lint = Tabseg_analyze.Lint

let default_roots = [ "lib"; "bin"; "bench" ]

let rec ml_files_under path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.concat_map (fun entry ->
           if String.length entry > 0 && (entry.[0] = '.' || entry.[0] = '_')
           then []
           else ml_files_under (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let list_rules () =
  print_endline "rule id  slug                        invariant";
  List.iter
    (fun (id, slug, description) ->
      Printf.printf "%-8s %-27s %s\n" id slug description)
    (Lint.rules_table ());
  print_endline
    "\nSuppress a finding at its site with\n\
    \  [@tabseg.allow \"<slug>\" \"<one-line justification>\"]\n\
     (or [@@tabseg.allow ...] on a binding, [@@@tabseg.allow ...] for a \
     whole file)."

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--list-rules" args then list_rules ()
  else begin
    let roots = match args with [] -> default_roots | roots -> roots in
    let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
    if missing <> [] then begin
      Printf.eprintf "tabseg_lint: no such file or directory: %s\n"
        (String.concat ", " missing);
      exit 2
    end;
    let files = List.concat_map ml_files_under roots in
    let findings = Lint.lint_files files in
    List.iter (fun f -> print_endline (Lint.render f)) findings;
    match findings with
    | [] ->
      Printf.printf "tabseg_lint: %d files clean (rules TS001-TS007)\n"
        (List.length files)
    | _ ->
      Printf.printf
        "tabseg_lint: %d finding(s) in %d files; suppress only with a \
         justified [@tabseg.allow], see --list-rules\n"
        (List.length findings) (List.length files);
      exit 1
  end
